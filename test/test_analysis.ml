(* The exhaustive-verification layer: DPOR schedule exploration against the
   naive branch-everywhere DFS, the happens-before race analyzer, the
   poly-comparison lint, and the [tm verify] campaign engine. *)

open Tm_safety
open Helpers

(* --- Explore: micro-programs with known schedule counts ------------------- *)

let explore_counts algo ~make =
  match algo with
  | `Naive ->
      Sim.Explore.run_naive ~max_runs:1_000_000 ~make ~on_result:ignore ()
  | `Dpor -> Sim.Explore.run ~max_runs:1_000_000 ~make ~on_result:ignore ()

let check_outcome name ~runs ~exhaustive (o : Sim.Explore.outcome) =
  Alcotest.(check bool) (name ^ " exhaustive") exhaustive o.exhaustive;
  Alcotest.(check int) (name ^ " runs") runs o.runs

(* n independent single-step fibers: the naive DFS pays the full n!
   while DPOR collapses the commuting schedules to a single run. *)
let test_noop_factorial () =
  let make () = (List.init 3 (fun _ -> fun () -> ()), fun () -> ()) in
  check_outcome "noop3 naive" ~runs:6 ~exhaustive:true
    (explore_counts `Naive ~make);
  let dpor = explore_counts `Dpor ~make in
  check_outcome "noop3 dpor" ~runs:1 ~exhaustive:true dpor;
  Alcotest.(check bool)
    "pruning reported" true
    (dpor.schedules_pruned > 0 && dpor.reduction_factor > 1.0)

(* Three fibers each writing a private cell: still one equivalence class,
   though every fiber now has two transitions (start + the write). *)
let test_disjoint_writes () =
  let make () =
    let cells = List.init 3 (fun _ -> Sim.Mem.make 0) in
    ( List.mapi (fun i c -> fun () -> Sim.Mem.set c i) cells,
      fun () -> () )
  in
  check_outcome "indep3 naive" ~runs:90 ~exhaustive:true
    (explore_counts `Naive ~make);
  check_outcome "indep3 dpor" ~runs:1 ~exhaustive:true
    (explore_counts `Dpor ~make)

(* Three writers to the same cell: all 3! = 6 write orders are
   inequivalent and DPOR must visit exactly those. *)
let test_conflicting_writes () =
  let make () =
    let c = Sim.Mem.make 0 in
    (List.init 3 (fun i -> fun () -> Sim.Mem.set c i), fun () -> ())
  in
  check_outcome "samecell3 naive" ~runs:90 ~exhaustive:true
    (explore_counts `Naive ~make);
  check_outcome "samecell3 dpor" ~runs:6 ~exhaustive:true
    (explore_counts `Dpor ~make)

(* A program whose fiber set changes between executions is not replayable;
   both explorers must refuse loudly instead of silently mis-scheduling. *)
let test_nondeterministic_rejected () =
  let ndmake () =
    let calls = ref 0 in
    fun () ->
      incr calls;
      let c = Sim.Mem.make 0 in
      let n = if !calls = 1 then 2 else 1 in
      (List.init n (fun i -> fun () -> Sim.Mem.set c i), fun () -> ())
  in
  let expect_invalid name f =
    match f () with
    | (_ : Sim.Explore.outcome) ->
        Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "naive" (fun () ->
      Sim.Explore.run_naive ~max_runs:1000 ~make:(ndmake ())
        ~on_result:ignore ());
  expect_invalid "dpor" (fun () ->
      Sim.Explore.run ~max_runs:1000 ~make:(ndmake ()) ~on_result:ignore ())

(* --- Explore: STM workloads, DPOR vs naive -------------------------------- *)

let sparse_params =
  {
    Stm.Workload.default with
    n_threads = 2;
    txns_per_thread = 2;
    ops_per_txn = 2;
    n_vars = 2;
    read_ratio = 0.5;
  }

(* Both enumerations finish on eager's workload; the naive one needs three
   orders of magnitude more runs for the same four transactions. *)
let test_eager_reduction () =
  let explore algo =
    Sim.Explore.explore_stm ~algo ~max_runs:200_000 ~stm:"eager"
      ~params:sparse_params ~seed:1 ~on_history:ignore ()
  in
  let dpor = explore `Dpor and naive = explore `Naive in
  Alcotest.(check bool) "dpor exhaustive" true dpor.exhaustive;
  Alcotest.(check bool) "naive exhaustive" true naive.exhaustive;
  Alcotest.(check bool)
    (Fmt.str "dpor (%d) at least 100x under naive (%d)" dpor.runs naive.runs)
    true
    (dpor.runs * 100 <= naive.runs)

(* --- Verify: campaign engine ---------------------------------------------- *)

let verify_cfg ?(seed = 1) ?(naive = 0) () =
  {
    Analysis.Verify.stms = [];
    params = sparse_params;
    seed;
    max_runs = 200_000;
    naive_max_runs = naive;
    max_retries = 4;
    max_nodes = 1_000_000;
  }

(* global-lock: naive finishes (about 103k schedules), so this is a true
   verdict-set equality check, plus the full safe-STM expectations. *)
let test_verify_global_lock_equal () =
  let r =
    Analysis.Verify.run_stm (verify_cfg ~naive:200_000 ()) "global-lock"
  in
  Alcotest.(check bool) "dpor exhaustive" true r.r_dpor.exhaustive;
  (match r.r_naive with
  | Some n -> Alcotest.(check bool) "naive exhaustive" true n.exhaustive
  | None -> Alcotest.fail "baseline requested");
  Alcotest.(check (option bool)) "verdict sets equal" (Some true) r.r_match;
  Alcotest.(check int) "no unsat" 0 r.r_verdicts.unsat;
  Alcotest.(check bool) "race-free" false (Analysis.Race.racy r.r_races);
  Alcotest.(check bool) "ok" true (Analysis.Verify.ok r)

(* eager under contention: naive still finishes, verdict sets agree, and —
   the point of exhaustive checking — non-du-opaque histories exist and
   are found. *)
let test_verify_eager_contended () =
  let r =
    Analysis.Verify.run_stm (verify_cfg ~seed:5 ~naive:200_000 ()) "eager"
  in
  Alcotest.(check bool) "dpor exhaustive" true r.r_dpor.exhaustive;
  Alcotest.(check (option bool)) "verdict sets equal" (Some true) r.r_match;
  Alcotest.(check bool) "violations found" true (r.r_verdicts.unsat > 0);
  Alcotest.(check bool) "racy" true (Analysis.Race.racy r.r_races)

(* QCheck: on every small random workload where both enumerations run, the
   DPOR verdict set must agree with the naive one (equality when the naive
   DFS finishes, inclusion when it is cut off). *)
let test_verdict_agreement =
  let stms = List.map fst Stm.Registry.algorithms in
  let gen =
    QCheck2.Gen.pair
      (QCheck2.Gen.oneofl stms)
      (QCheck2.Gen.int_range 1 500)
  in
  qtest ~count:12 "DPOR/naive verdict sets agree (random stm+seed)" gen
    (fun (stm, seed) ->
      let cfg =
        {
          Analysis.Verify.stms = [];
          params = { sparse_params with txns_per_thread = 1 };
          seed;
          max_runs = 50_000;
          naive_max_runs = 5_000;
          max_retries = 4;
          max_nodes = 200_000;
        }
      in
      let r = Analysis.Verify.run_stm cfg stm in
      r.Analysis.Verify.r_match <> Some false
      && r.Analysis.Verify.r_verdicts.unknown = 0)

(* --- Race analyzer: positive and negative fixtures ------------------------ *)

let races_of ?(seed = 5) stm =
  let report = ref Analysis.Race.{ accesses = 0; locations = 0; sync_locations = 0; races = [] } in
  let (_ : Sim.Explore.outcome) =
    Sim.Explore.explore_stm_results ~max_runs:200_000 ~trace:true ~stm
      ~params:sparse_params ~seed
      ~on_result:(fun r ->
        match r.Sim.Runner.trace with
        | Some t -> report := Analysis.Race.merge !report (Analysis.Race.analyze t)
        | None -> Alcotest.fail "tracing requested")
      ()
  in
  !report

let test_race_negative stm () =
  (* tl2's retry amplification blows up the contended schedule space, so it
     keeps the sparse seed; the others get real conflicts. *)
  let seed = if stm = "tl2" then 1 else 5 in
  let r = races_of ~seed stm in
  Alcotest.(check bool)
    (Fmt.str "%s clean (%d accesses)" stm r.accesses)
    false
    (Analysis.Race.racy r)

let test_race_dirty_read () =
  let r = races_of "dirty-read" in
  Alcotest.(check bool) "flagged" true (Analysis.Race.racy r);
  Alcotest.(check bool) "a dirty read, specifically" true
    (List.exists
       (fun (x : Analysis.Race.race) -> x.rkind = Analysis.Race.Dirty_read)
       r.races)

let test_race_eager () =
  let r = races_of "eager" in
  Alcotest.(check bool) "flagged" true (Analysis.Race.racy r);
  Alcotest.(check bool) "an unsynchronized write-write pair" true
    (List.exists
       (fun (x : Analysis.Race.race) -> x.rkind = Analysis.Race.Write_write)
       r.races)

(* Hand-built traces exercise the analyzer's rules in isolation. *)
let test_race_rules () =
  let open Tm_stm.Trace in
  let dirty =
    [|
      Mark { fiber = 0; txn = 1; mark = Began };
      Access { fiber = 0; loc = 10; kind = Write };
      Mark { fiber = 1; txn = 2; mark = Began };
      Access { fiber = 1; loc = 10; kind = Read };
      Mark { fiber = 1; txn = 2; mark = Committed };
    |]
  in
  Alcotest.(check bool) "unordered committed read flagged" true
    (Analysis.Race.racy (Analysis.Race.analyze dirty));
  let aborted =
    Array.copy dirty
  in
  aborted.(4) <- Mark { fiber = 1; txn = 2; mark = Aborted };
  Alcotest.(check bool) "aborting clears the suspect read" false
    (Analysis.Race.racy (Analysis.Race.analyze aborted));
  let fenced =
    [|
      Mark { fiber = 0; txn = 1; mark = Began };
      Access { fiber = 0; loc = 10; kind = Write };
      Access { fiber = 0; loc = 99; kind = Cas };
      Mark { fiber = 1; txn = 2; mark = Began };
      Access { fiber = 1; loc = 99; kind = Cas };
      Access { fiber = 1; loc = 10; kind = Read };
      Mark { fiber = 1; txn = 2; mark = Committed };
    |]
  in
  Alcotest.(check bool) "acquire-release ordering clears it" false
    (Analysis.Race.racy (Analysis.Race.analyze fenced));
  let ww =
    [|
      Access { fiber = 0; loc = 10; kind = Write };
      Access { fiber = 1; loc = 10; kind = Write };
    |]
  in
  let r = Analysis.Race.analyze ww in
  Alcotest.(check bool) "bare write-write flagged" true
    (List.exists
       (fun (x : Analysis.Race.race) -> x.rkind = Analysis.Race.Write_write)
       r.races)

(* --- Lint ------------------------------------------------------------------ *)

let test_lint_positives () =
  let src =
    String.concat "\n"
      [
        "let bad1 h = Hashtbl.hash h";
        "let bad2 a b = Stdlib.compare a b";
        "let bad3 xs = List.sort compare xs";
        "let bad4 e = e = Event.Inv (1, op)";
        "let bad5 h = h <> History.empty";
      ]
  in
  let fs = Analysis.Lint.scan_source ~file:"bad.ml" src in
  Alcotest.(check (list string))
    "one finding per line, right rules"
    [ "poly-hash"; "poly-compare"; "poly-compare"; "poly-eq"; "poly-eq" ]
    (List.map (fun (f : Analysis.Lint.finding) -> f.rule) fs);
  Alcotest.(check (list int))
    "line numbers" [ 1; 2; 3; 4; 5 ]
    (List.map (fun (f : Analysis.Lint.finding) -> f.line) fs)

let test_lint_negatives () =
  let src =
    String.concat "\n"
      [
        "let ok1 a b = Event.compare a b";
        "let ok2 = { history = History.empty; n = 0 }";
        "let ok3 t = t.status = Txn.Committed";
        "let ok4 v = v = Event.init_value";
        "(* in a comment: Hashtbl.hash, compare, x = Event.Inv *)";
        {|let ok5 = "in a string: Stdlib.compare h = History.empty"|};
        "let compare a b = Int.compare a b";
        "let h, torn = History.of_events_prefix events";
        "List.sort (fun a b -> Int.compare a.time b.time) accesses";
      ]
  in
  match Analysis.Lint.scan_source ~file:"ok.ml" src with
  | [] -> ()
  | fs ->
      Alcotest.failf "false positives:@.%a"
        Fmt.(list ~sep:(any "@.") Analysis.Lint.pp_finding)
        fs

let test_lint_whitelist () =
  let dir = Filename.get_temp_dir_name () in
  let path = Filename.concat dir "event.ml" in
  let oc = open_out path in
  output_string oc "let compare : t -> t -> int = Stdlib.compare\n";
  close_out oc;
  Alcotest.(check int)
    "whitelisted basename skipped" 0
    (List.length (Analysis.Lint.scan_files [ path ]));
  Alcotest.(check bool)
    "same file flagged without the whitelist" true
    (Analysis.Lint.scan_files ~whitelist:[] [ path ] <> []);
  Sys.remove path

(* Every registered rule must catch its embedded positive fixture and
   stay quiet on its near-miss negative — the same check CI runs as
   [tm lint --self-test]. *)
let test_lint_self_test () =
  List.iter
    (fun (name, ok) -> Alcotest.(check bool) name true ok)
    (Analysis.Lint.self_test ())

let test_lint_pragma () =
  let clean src =
    match Analysis.Lint.scan_source ~file:"p.ml" src with
    | [] -> ()
    | fs ->
        Alcotest.failf "expected full suppression:@.%a"
          Fmt.(list ~sep:(any "@.") Analysis.Lint.pp_finding)
          fs
  in
  (* a used pragma suppresses the finding and reports nothing itself *)
  clean "(* lint: allow poly-hash — fixture *)\nlet f h = Hashtbl.hash h\n";
  (* the justification may span lines: coverage runs through the line
     after the comment closes *)
  clean
    "(* lint: allow poly-hash — a justification\n\
    \   spanning two lines *)\n\
     let f h = Hashtbl.hash h\n"

let test_lint_unused_pragma () =
  let rules src =
    List.map
      (fun (f : Analysis.Lint.finding) -> (f.line, f.rule))
      (Analysis.Lint.scan_source ~file:"p.ml" src)
  in
  Alcotest.(check (list (pair int string)))
    "stale pragma reported"
    [ (1, "unused-suppression") ]
    (rules "(* lint: allow poly-hash *)\nlet x = 1\n");
  Alcotest.(check (list (pair int string)))
    "unknown rule name reported, finding kept"
    [ (1, "unused-suppression"); (2, "poly-hash") ]
    (rules "(* lint: allow no-such-rule *)\nlet f h = Hashtbl.hash h\n")

let test_lint_rule_selection () =
  let src = "let f g h = try g h with _ -> Hashtbl.hash h\n" in
  let with_rules rs =
    List.map
      (fun (f : Analysis.Lint.finding) -> f.rule)
      (Analysis.Lint.scan_source ~rules_enabled:rs ~file:"s.ml" src)
  in
  Alcotest.(check (list string))
    "both rules fire unrestricted"
    [ "poly-hash"; "swallowed-exception" ]
    (with_rules [ "poly-hash"; "swallowed-exception" ]);
  Alcotest.(check (list string))
    "selection drops the other rule" [ "swallowed-exception" ]
    (with_rules [ "swallowed-exception" ]);
  Alcotest.(check (list string))
    "unknown names select nothing" []
    (Analysis.Lint.unknown_rules [ "poly-hash"; "swallowed-exception" ]);
  Alcotest.(check (list string))
    "unknown_rules flags typos" [ "poly-hsah" ]
    (Analysis.Lint.unknown_rules [ "poly-hsah"; "poly-eq" ])

let test_lint_loop_scope () =
  let rules src =
    List.map
      (fun (f : Analysis.Lint.finding) -> f.rule)
      (Analysis.Lint.scan_source ~rules_enabled:[ "quadratic-hot-path" ]
         ~file:"s.ml" src)
  in
  (* a multi-line combinator body is a loop region even when the
     combinator's own line closes its parens *)
  Alcotest.(check (list string))
    "scan inside a spread-out iter body flagged" [ "quadratic-hot-path" ]
    (rules
       "let f xs ys =\n\
       \  List.iter\n\
       \    (fun x ->\n\
       \      if List.mem x ys then ())\n\
       \    xs\n");
  Alcotest.(check (list string))
    "while body flagged" [ "quadratic-hot-path" ]
    (rules
       "let f q ys =\n\
       \  while not (Queue.is_empty q) do\n\
       \    ignore (List.nth ys (Queue.pop q))\n\
       \  done\n");
  (* ... and the region closes: the same scan after the loop is quiet *)
  Alcotest.(check (list string))
    "scan after the loop ends is quiet" []
    (rules
       "let f xs ys =\n\
       \  List.iter ignore xs;\n\
       \  ignore ys\n\n\
        let g x ys = List.mem x ys\n")

let test_lint_json () =
  let src = "let f h = Hashtbl.hash h\nlet g a b = Stdlib.compare a b\n" in
  let findings = Analysis.Lint.scan_source ~file:"j.ml" src in
  let json = Analysis.Lint.report_json findings in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Fmt.str "contains %s" needle) true
        (let rec has i =
           i + String.length needle <= String.length json
           && (String.sub json i (String.length needle) = needle || has (i + 1))
         in
         has 0))
    [
      {|"count": 2|};
      {|"rules": |};
      {|"file": "j.ml"|};
      {|"rule": "poly-hash"|};
      {|"rule": "poly-compare"|};
      {|"line": 2|};
    ];
  Alcotest.(check bool) "empty report still well-formed" true
    (Analysis.Lint.report_json [] <> "")

(* The domain-safety verdict must not contradict the dynamic race
   analyzer: the concurrency-heavy trees scan statically clean, and the
   dynamic analyzer agrees there is no known race on a safe STM's real
   interleavings (it still catches the unsafe designs — see the race
   fixtures above).  A statically-clean ∧ dynamically-racy pair would
   mean the static rule is looking at the wrong discipline. *)
let test_lint_domain_safety_reconciled () =
  let roots =
    List.filter Sys.file_exists
      [ "../lib/service"; "../lib/stm"; "lib/service"; "lib/stm" ]
  in
  if roots = [] then Alcotest.fail "source trees not found";
  (match
     Analysis.Lint.scan_roots ~rules_enabled:[ "domain-safety" ] roots
   with
  | [] -> ()
  | fs ->
      Alcotest.failf "domain-safety findings in service/stm:@.%a"
        Fmt.(list ~sep:(any "@.") Analysis.Lint.pp_finding)
        fs);
  let r = races_of ~seed:1 "tl2" in
  Alcotest.(check bool)
    (Fmt.str "tl2 dynamically clean too (%d accesses)" r.accesses)
    false
    (Analysis.Race.racy r)

(* The lint gate itself: the shipped sources must scan clean.  [dune
   runtest] runs from [_build/default/test]; the source trees are declared
   as test deps. *)
let test_lint_repo_clean () =
  let roots =
    List.filter Sys.file_exists [ "../lib"; "../bin"; "lib"; "bin" ]
  in
  if roots = [] then Alcotest.fail "source trees not found";
  match Analysis.Lint.scan_roots roots with
  | [] -> ()
  | fs ->
      Alcotest.failf
        "lint findings in shipped sources:@.%a@.(fix the code, or for a \
         reviewed false positive add a '(* lint: allow <rule> — why *)' \
         pragma or a per-rule whitelist entry)"
        Fmt.(list ~sep:(any "@.") Analysis.Lint.pp_finding)
        fs

let suite =
  [
    ( "analysis: explore (DPOR vs naive)",
      [
        test "3 no-op fibers: naive n!, dpor 1" test_noop_factorial;
        test "3 disjoint writers: naive 90, dpor 1" test_disjoint_writes;
        test "3 same-cell writers: naive 90, dpor 3!" test_conflicting_writes;
        test "non-deterministic program rejected" test_nondeterministic_rejected;
        slow "eager: both finish, ≥100x reduction" test_eager_reduction;
      ] );
    ( "analysis: verify campaigns",
      [
        slow "global-lock: verdict sets equal, clean" test_verify_global_lock_equal;
        slow "eager contended: violations + races found" test_verify_eager_contended;
        test_verdict_agreement;
      ] );
    ( "analysis: races",
      [
        test "analyzer rules on hand-built traces" test_race_rules;
        slow "dirty-read flagged" test_race_dirty_read;
        slow "eager flagged" test_race_eager;
        slow "tl2 clean" (test_race_negative "tl2");
        slow "norec clean" (test_race_negative "norec");
        slow "global-lock clean" (test_race_negative "global-lock");
      ] );
    ( "analysis: lint",
      [
        test "positives" test_lint_positives;
        test "negatives" test_lint_negatives;
        test "whitelist" test_lint_whitelist;
        test "every rule's fixtures pass (self-test)" test_lint_self_test;
        test "pragmas suppress and count as used" test_lint_pragma;
        test "stale/unknown pragmas reported" test_lint_unused_pragma;
        test "rule selection and unknown names" test_lint_rule_selection;
        test "loop regions open and close" test_lint_loop_scope;
        test "json report shape" test_lint_json;
        slow "domain-safety agrees with the race analyzer"
          test_lint_domain_safety_reconciled;
        test "shipped sources clean" test_lint_repo_clean;
      ] );
  ]
