(* Binary codec and wire protocol: round-trips and decoder totality.

   Pins the promise codec.mli and protocol.mli make: every encoded value
   decodes back to itself, and adversarial bytes — truncations, random
   mutations, pure garbage — yield [Error _], never an exception. *)

open Tm_safety
open Helpers
module Codec = Service.Codec
module Protocol = Service.Protocol

(* --- primitives --------------------------------------------------------- *)

let roundtrip_uvarint () =
  List.iter
    (fun n ->
      let b = Buffer.create 16 in
      Codec.put_uvarint b n;
      let r = Codec.reader (Buffer.contents b) in
      Alcotest.(check int) (Fmt.str "uvarint %d" n) n (Codec.get_uvarint r);
      Alcotest.(check bool) "consumed" true (Codec.at_end r))
    [ 0; 1; 127; 128; 16383; 16384; 0x3fffffff; max_int ]

let roundtrip_int () =
  List.iter
    (fun n ->
      let b = Buffer.create 16 in
      Codec.put_int b n;
      let r = Codec.reader (Buffer.contents b) in
      Alcotest.(check int) (Fmt.str "int %d" n) n (Codec.get_int r))
    [ 0; 1; -1; 63; -64; 1000; -1000; 1 lsl 60; -(1 lsl 60) ]

let roundtrip_string () =
  List.iter
    (fun s ->
      let b = Buffer.create 16 in
      Codec.put_string b s;
      let r = Codec.reader (Buffer.contents b) in
      Alcotest.(check string) "string" s (Codec.get_string r))
    [ ""; "x"; "hello"; String.make 300 '\xff'; "\x00\x80\x7f" ]

let uvarint_rejects_overflow () =
  (* Ten continuation bytes would shift past bit 62. *)
  let too_long = String.make 9 '\xff' ^ "\x7f" in
  match Codec.get_uvarint (Codec.reader too_long) with
  | _ -> Alcotest.fail "expected Codec.Error on overflowing varint"
  | exception Codec.Error _ -> ()

(* --- events -------------------------------------------------------------- *)

let all_event_shapes =
  [
    Event.Inv (1, Event.Read 0);
    Event.Inv (2, Event.Write (3, -7));
    Event.Inv (3, Event.Try_commit);
    Event.Inv (4, Event.Try_abort);
    Event.Res (1, Event.Read_ok 42);
    Event.Res (2, Event.Write_ok);
    Event.Res (3, Event.Committed);
    Event.Res (4, Event.Aborted);
  ]

let roundtrip_events () =
  List.iter
    (fun ev ->
      let b = Buffer.create 16 in
      Codec.put_event b ev;
      let r = Codec.reader (Buffer.contents b) in
      Alcotest.check event "event" ev (Codec.get_event r);
      Alcotest.(check bool) "consumed" true (Codec.at_end r))
    all_event_shapes;
  let b = Buffer.create 64 in
  Codec.put_events b all_event_shapes;
  let r = Codec.reader (Buffer.contents b) in
  Alcotest.(check (list event)) "event list" all_event_shapes
    (Codec.get_events r)

let event_rejects_t0 () =
  (* tag inv-read, tx 0: identifiers must be positive. *)
  match Codec.get_event (Codec.reader "\x00\x00\x00") with
  | _ -> Alcotest.fail "expected Codec.Error on tx 0"
  | exception Codec.Error _ -> ()

(* --- standalone binary histories ---------------------------------------- *)

let figures_roundtrip () =
  List.iter
    (fun (e : Figures.expectation) ->
      let s = Codec.history_to_string e.history in
      Alcotest.(check bool) "magic" true (Codec.looks_binary s);
      match Codec.history_of_string s with
      | Ok h -> Alcotest.check history e.name e.history h
      | Error why -> Alcotest.failf "%s: %s" e.name why)
    Figures.catalog

let figures_text_binary_agree () =
  (* The binary format and the text format decode to the same history. *)
  List.iter
    (fun (e : Figures.expectation) ->
      let via_text = Parse.of_string_exn (Parse.to_text e.history) in
      let via_binary =
        match Codec.history_of_string (Codec.history_to_string e.history) with
        | Ok h -> h
        | Error why -> Alcotest.failf "%s: binary decode: %s" e.name why
      in
      Alcotest.check history e.name via_text via_binary)
    Figures.catalog

let truncations_fail () =
  let s = Codec.history_to_string (List.hd Figures.catalog).history in
  for len = 0 to String.length s - 1 do
    match Codec.history_of_string (String.sub s 0 len) with
    | Ok _ -> Alcotest.failf "strict prefix of length %d decoded" len
    | Error _ -> ()
  done

(* --- protocol frames ----------------------------------------------------- *)

let gen_status =
  let open QCheck2.Gen in
  let str = string_size ~gen:printable (0 -- 20) in
  oneof
    [
      pure Protocol.S_ok;
      map (fun s -> Protocol.S_violation s) str;
      map (fun s -> Protocol.S_budget s) str;
    ]

let gen_domain_stats =
  let open QCheck2.Gen in
  let n = 0 -- 100_000 in
  map3
    (fun (a, b) (c, d) (e, (f, g)) ->
      {
        Protocol.live_sessions = a;
        closed_sessions = b;
        events = c;
        responses = d;
        fastpath_hits = e;
        searches = f;
        nodes = g;
      })
    (pair n n) (pair n n)
    (pair n (pair n n))

let gen_mode =
  QCheck2.Gen.oneofl [ Protocol.M_full; Protocol.M_sampling; Protocol.M_shed ]

let gen_frame =
  let open QCheck2.Gen in
  let session = 1 -- 1_000 in
  let str = string_size ~gen:printable (0 -- 30) in
  let events = map History.to_list (arb_history ()) in
  oneof
    [
      map (fun v -> Protocol.Hello { version = v }) (1 -- 7);
      map (fun s -> Protocol.Open_session { session = s }) session;
      map2
        (fun s events -> Protocol.Events { session = s; events })
        session events;
      map2
        (fun s token -> Protocol.Checkpoint { session = s; token })
        session (0 -- 1_000);
      map (fun s -> Protocol.Close_session { session = s }) session;
      (* Both tail-free verdicts (applied = events, full mode — the v1
         encoding) and v2 verdicts carrying a degradation tail. *)
      map3
        (fun s token (events, status) ->
          Protocol.Verdict
            {
              session = s;
              token;
              events;
              status;
              mode = Protocol.M_full;
              applied = events;
            })
        session (0 -- 1_000)
        (pair (0 -- 100_000) gen_status);
      map3
        (fun s ((token, events), (mode, applied)) status ->
          Protocol.Verdict { session = s; token; events; status; mode; applied })
        session
        (pair (pair (0 -- 1_000) (0 -- 100_000)) (pair gen_mode (0 -- 200_000)))
        gen_status;
      pure Protocol.Stats_req;
      map (fun ds -> Protocol.Stats ds) (list_size (0 -- 5) gen_domain_stats);
      map2
        (fun code message -> Protocol.Err { code; message })
        (oneofl
           [
             Protocol.Bad_frame; Protocol.Bad_magic;
             Protocol.Unsupported_version; Protocol.Unknown_session;
             Protocol.Duplicate_session; Protocol.Server_error;
             Protocol.Overloaded;
           ])
        str;
      pure Protocol.Goodbye;
      map2
        (fun s from -> Protocol.Resume { session = s; from })
        session (0 -- 100_000);
      map3
        (fun s (applied, mode) status ->
          Protocol.Resumed { session = s; applied; mode; status })
        session
        (pair (0 -- 100_000) gen_mode)
        gen_status;
      map2
        (fun s retry_after_ms -> Protocol.Throttle { session = s; retry_after_ms })
        session (0 -- 10_000);
      pure Protocol.Heartbeat;
      map3
        (fun s from events -> Protocol.Events_at { session = s; from; events })
        session (0 -- 100_000) events;
      map2 (fun s reason -> Protocol.Shed { session = s; reason }) session str;
    ]

let prop_frame_roundtrip =
  qtest ~count:1000 "protocol: decode (to_string f) = Ok f (1000x)" gen_frame
    (fun f ->
      match Protocol.decode (Protocol.to_string f) with
      | Ok f' -> f = f'
      | Error _ -> false)

(* --- the QCheck round-trip and fuzz properties --------------------------- *)

let prop_events_roundtrip =
  qtest ~count:1000 "codec: events decode (encode evs) = evs (1000x)"
    (arb_history ()) (fun h ->
      let events = History.to_list h in
      let b = Buffer.create 256 in
      Codec.put_events b events;
      let r = Codec.reader (Buffer.contents b) in
      List.equal Event.equal events (Codec.get_events r) && Codec.at_end r)

let prop_history_roundtrip =
  qtest ~count:1000 "codec: history_of_string (history_to_string h) = Ok h"
    (arb_history ()) (fun h ->
      match Codec.history_of_string (Codec.history_to_string h) with
      | Ok h' -> History.to_list h = History.to_list h'
      | Error _ -> false)

(* Mutate a few bytes of a valid encoding: the decoder must return — any
   [Ok]/[Error] is fine, an exception is the bug.  (A mutation can land in
   a string payload and still decode, so [Ok] is not excluded.) *)

let mutate s muts =
  let b = Bytes.of_string s in
  List.iter
    (fun (pos, byte) ->
      if Bytes.length b > 0 then
        Bytes.set b (pos mod Bytes.length b) (Char.chr (byte land 0xff)))
    muts;
  Bytes.to_string b

let gen_mutations =
  QCheck2.Gen.(list_size (1 -- 8) (pair (0 -- 10_000) (0 -- 255)))

let prop_history_fuzz =
  qtest ~count:1000 "codec: mutated history bytes never crash the decoder"
    QCheck2.Gen.(pair (arb_history ()) gen_mutations)
    (fun (h, muts) ->
      let s = mutate (Codec.history_to_string h) muts in
      match Codec.history_of_string s with Ok _ | Error _ -> true)

let prop_frame_fuzz =
  qtest ~count:1000 "protocol: mutated frame bodies never crash the decoder"
    QCheck2.Gen.(pair gen_frame gen_mutations)
    (fun (f, muts) ->
      let s = mutate (Protocol.to_string f) muts in
      match Protocol.decode s with Ok _ | Error _ -> true)

(* --- batched decode ≡ per-event decode ----------------------------------- *)

(* [get_events] decodes a whole batch in one pass with hoisted bounds
   checks; this is the reference it must match bit for bit — the public
   per-event decoder driven by the same count prefix.  Same events, same
   final position, same error message, over valid encodings, mutated
   bytes, strict prefixes and garbage alike. *)

let reference_get_events r =
  let n = Codec.get_uvarint r in
  if n > Codec.remaining r then
    Codec.fail "event count %d exceeds remaining payload" n;
  List.init n (fun _ -> Codec.get_event r)

let batch_equals_reference s =
  let run f =
    let r = Codec.reader s in
    match f r with
    | evs -> Ok (evs, r.Codec.pos)
    | exception Codec.Error m -> Error m
  in
  match (run Codec.get_events, run reference_get_events) with
  | Ok (e1, p1), Ok (e2, p2) -> List.equal Event.equal e1 e2 && p1 = p2
  | Error m1, Error m2 -> String.equal m1 m2
  | Ok _, Error _ | Error _, Ok _ -> false

let encode_events events =
  let b = Buffer.create 256 in
  Codec.put_events b events;
  Buffer.contents b

let prop_batch_decode_valid =
  qtest ~count:1000 "codec: batch decode = per-event decode on encodings"
    (arb_history ()) (fun h ->
      batch_equals_reference (encode_events (History.to_list h)))

let prop_batch_decode_fuzz =
  qtest ~count:1000 "codec: batch decode = per-event decode under mutation"
    QCheck2.Gen.(pair (arb_history ()) gen_mutations)
    (fun (h, muts) ->
      batch_equals_reference (mutate (encode_events (History.to_list h)) muts))

let prop_batch_decode_garbage =
  qtest ~count:1000 "codec: batch decode = per-event decode on garbage"
    QCheck2.Gen.(string_size ~gen:(0 -- 255 |> map Char.chr) (0 -- 96))
    batch_equals_reference

let batch_decode_prefixes () =
  (* Every strict prefix of a long valid batch: exercises the slack-window
     fallback at every possible distance from the frame boundary. *)
  List.iter
    (fun (e : Figures.expectation) ->
      let s = encode_events (History.to_list e.history) in
      for len = 0 to String.length s do
        if not (batch_equals_reference (String.sub s 0 len)) then
          Alcotest.failf "%s: batch/per-event divergence at prefix %d" e.name
            len
      done)
    Figures.catalog

(* --- batched encode ≡ per-event encode ----------------------------------- *)

(* [put_events] serializes a whole batch through a scratch block with
   unchecked byte writes; this is the reference it must match bit for
   bit — the count prefix followed by the public per-event encoder.
   Same bytes on success; on a failed encode (negative operand), the
   same exception and the same partial buffer contents. *)

let reference_put_events b events =
  Codec.put_uvarint b (List.length events);
  List.iter (Codec.put_event b) events

let encode_parity events =
  let run f =
    let b = Buffer.create 256 in
    match f b events with
    | () -> Ok (Buffer.contents b)
    | exception Invalid_argument m -> Error (m, Buffer.contents b)
  in
  match (run Codec.put_events, run reference_put_events) with
  | Ok s1, Ok s2 -> String.equal s1 s2
  | Error (m1, s1), Error (m2, s2) -> String.equal m1 m2 && String.equal s1 s2
  | Ok _, Error _ | Error _, Ok _ -> false

let prop_batch_encode_valid =
  qtest ~count:1000 "codec: batch encode = per-event encode on histories"
    (arb_history ()) (fun h -> encode_parity (History.to_list h))

(* Raw event lists with hostile operands: negative variables and
   min_int values make the encoder raise partway through an event; the
   batch path must leave the buffer exactly as the reference would. *)
let gen_hostile_events =
  let open QCheck2.Gen in
  let hostile = oneofl [ min_int; -1; 0; 1; 5; max_int ] in
  let ev =
    oneof
      [
        map2 (fun k v -> Event.Inv (k, Event.Read v)) (1 -- 4) hostile;
        map3
          (fun k var v -> Event.Inv (k, Event.Write (var, v)))
          (1 -- 4) hostile hostile;
        map (fun k -> Event.Inv (k, Event.Try_commit)) (1 -- 4);
        map2 (fun k v -> Event.Res (k, Event.Read_ok v)) (1 -- 4) hostile;
        map (fun k -> Event.Res (k, Event.Committed)) (1 -- 4);
      ]
  in
  list_size (0 -- 24) ev

let prop_batch_encode_hostile =
  qtest ~count:1000 "codec: batch encode = per-event encode on hostile events"
    gen_hostile_events encode_parity

let batch_encode_long () =
  (* Enough events to overflow the scratch block several times: the
     flush boundaries must be seamless and the result must round-trip. *)
  let events =
    List.concat_map
      (fun i ->
        [
          Event.Inv (i + 1, Event.Write (i, (i * 7919) - 4000));
          Event.Res (i + 1, Event.Write_ok);
        ])
      (List.init 2000 Fun.id)
  in
  Alcotest.(check bool) "parity across flushes" true (encode_parity events);
  let r = Codec.reader (encode_events events) in
  Alcotest.(check bool)
    "round-trips" true
    (List.equal Event.equal events (Codec.get_events r) && Codec.at_end r)

let prop_garbage =
  qtest ~count:1000 "protocol: arbitrary bytes never crash the decoder"
    QCheck2.Gen.(string_size ~gen:(0 -- 255 |> map Char.chr) (0 -- 64))
    (fun s ->
      (match Protocol.decode s with Ok _ | Error _ -> ());
      match Codec.history_of_string s with Ok _ | Error _ -> true)

let suite =
  [
    ( "codec",
      [
        test "uvarint round-trip at the edges" roundtrip_uvarint;
        test "zigzag int round-trip" roundtrip_int;
        test "string round-trip" roundtrip_string;
        test "overlong varint rejected" uvarint_rejects_overflow;
        test "every event shape round-trips" roundtrip_events;
        test "transaction 0 rejected" event_rejects_t0;
        test "paper figures round-trip through TMH1" figures_roundtrip;
        test "text and binary formats agree" figures_text_binary_agree;
        test "every strict prefix fails to decode" truncations_fail;
        prop_events_roundtrip;
        prop_history_roundtrip;
        prop_history_fuzz;
        test "batch decode = per-event decode on every strict prefix"
          batch_decode_prefixes;
        prop_batch_decode_valid;
        prop_batch_decode_fuzz;
        prop_batch_decode_garbage;
        test "batch encode = per-event encode across flushes" batch_encode_long;
        prop_batch_encode_valid;
        prop_batch_encode_hostile;
      ] );
    ( "protocol",
      [ prop_frame_roundtrip; prop_frame_fuzz; prop_garbage ] );
  ]
