(* The conflict-graph du-opacity backend against the search: agreement on
   every soak source (including fault-injected streams), figure-catalog
   parity, the Finding-3 duplicate-writes fallback, incremental prefix
   verdicts, and the monitor's graph fast path. *)

open Tm_safety
open Helpers

let max_nodes = 500_000

(* --- QCheck equivalence over the soak sources ---------------------------- *)

let soak_sources : Oracle.source list =
  [
    `Gen; `Stm "tl2"; `Stm "norec"; `Stm "pessimistic"; `Faults "tl2";
    `Faults "norec";
  ]

let gen_soak_history =
  QCheck2.Gen.map
    (fun (i, seed) ->
      Oracle.produce (List.nth soak_sources (i mod List.length soak_sources))
        ~seed)
    QCheck2.Gen.(pair (int_range 0 5) (int_range 0 100_000))

let validated name h = function
  | Conflict_graph.Sat c -> (
      match Serialization.validate ~claim:Serialization.Du_opaque h c with
      | Ok () -> true
      | Error why ->
          QCheck2.Test.fail_reportf "%s: certificate rejected: %s" name why)
  | Conflict_graph.Unsat _ | Conflict_graph.Ambiguous _ -> true

(* The raw backend must agree with the search whenever it decides, and the
   fallback-complete entry point must agree whenever both decide. *)
let prop_graph_agrees =
  qtest ~count:1000 "Conflict_graph ≡ Du_opacity over soak sources"
    gen_soak_history
    (fun h ->
      let raw = Conflict_graph.check h in
      let v = Du_opacity.check ~max_nodes h in
      ignore (validated "raw" h raw);
      let raw_ok =
        match raw, v with
        | Conflict_graph.Sat _, Verdict.Sat _
        | Conflict_graph.Unsat _, Verdict.Unsat _
        | Conflict_graph.Ambiguous _, _
        | _, Verdict.Unknown _ ->
            true
        | _ -> false
      in
      let fb_ok =
        match Conflict_graph.check_or_fallback ~max_nodes h, v with
        | Verdict.Sat _, Verdict.Sat _ | Verdict.Unsat _, Verdict.Unsat _ ->
            true
        | Verdict.Unknown _, _ | _, Verdict.Unknown _ -> true
        | _ -> false
      in
      raw_ok && fb_ok)

(* --- figure-catalog parity ------------------------------------------------ *)

let test_catalog () =
  List.iter
    (fun (e : Figures.expectation) ->
      (match Conflict_graph.check e.Figures.history with
      | Conflict_graph.Sat _ when not e.Figures.du_opaque ->
          Alcotest.failf "%s: graph says Sat, paper says not du-opaque"
            e.Figures.name
      | Conflict_graph.Unsat why when e.Figures.du_opaque ->
          Alcotest.failf "%s: graph says Unsat (%s), paper says du-opaque"
            e.Figures.name why
      | _ -> ());
      check_verdict
        (e.Figures.name ^ " (graph+fallback)")
        e.Figures.du_opaque
        (Conflict_graph.check_or_fallback ~max_nodes e.Figures.history))
    Figures.catalog

(* --- Finding 3: duplicate written values route to the fallback ------------ *)

let test_corollary2_gap_fallback () =
  let h, prefix_len = Tm_figures.Findings.corollary2_gap in
  (match Conflict_graph.check h with
  | Conflict_graph.Ambiguous _ -> ()
  | Conflict_graph.Sat _ | Conflict_graph.Unsat _ ->
      Alcotest.fail
        "duplicate-writes history must be Ambiguous for the raw backend");
  check_sat "full corollary2_gap history (fallback)"
    (Conflict_graph.check_or_fallback ~max_nodes h);
  check_unsat "corollary2_gap prefix (fallback)"
    (Conflict_graph.check_or_fallback ~max_nodes (History.prefix h prefix_len))

(* --- incremental prefix verdicts ------------------------------------------ *)

let test_inc_prefix_verdicts () =
  let params =
    {
      Stm.Workload.default with
      n_threads = 3;
      txns_per_thread = 4;
      ops_per_txn = 3;
      n_vars = 4;
      values = `Unique;
    }
  in
  let h = (Sim.Runner.run ~stm:"tl2" ~params ~seed:11 ()).Sim.Runner.history in
  let g = Conflict_graph.Inc.create () in
  let decided = ref 0 in
  List.iteri
    (fun i ev ->
      Conflict_graph.Inc.push g ev;
      if Event.is_res ev then begin
        let hp = History.prefix h (i + 1) in
        match Conflict_graph.Inc.verdict g, Du_opacity.check ~max_nodes hp with
        | Conflict_graph.Sat _, Verdict.Sat _
        | Conflict_graph.Unsat _, Verdict.Unsat _ ->
            incr decided
        | Conflict_graph.Ambiguous _, _ | _, Verdict.Unknown _ -> ()
        | Conflict_graph.Sat _, Verdict.Unsat _ ->
            Alcotest.failf "prefix %d: graph Sat, search Unsat" (i + 1)
        | Conflict_graph.Unsat _, Verdict.Sat _ ->
            Alcotest.failf "prefix %d: graph Unsat, search Sat" (i + 1)
      end)
    (History.to_list h);
  if !decided = 0 then
    Alcotest.fail "graph decided no prefix of a recorded TL2 stream"

(* --- monitor graph fast path ---------------------------------------------- *)

let test_monitor_graph_hits () =
  (* A recorded unique-writes TL2 stream: every response must be absorbed
     by revalidation or decided by the graph — a backtracking search
     running here is the fast-path regression this test guards. *)
  let params =
    {
      Stm.Workload.default with
      n_threads = 3;
      txns_per_thread = 6;
      ops_per_txn = 3;
      n_vars = 4;
      values = `Unique;
    }
  in
  let h = (Sim.Runner.run ~stm:"tl2" ~params ~seed:5 ()).Sim.Runner.history in
  let m = Monitor.create ~max_nodes () in
  List.iter (fun ev -> ignore (Monitor.push m ev)) (History.to_list h);
  (match Monitor.status m with
  | `Ok -> ()
  | `Violation why | `Budget why ->
      Alcotest.failf "recorded TL2 stream rejected: %s" why);
  Alcotest.(check int) "every response accounted to exactly one path"
    (Monitor.responses_seen m)
    (Monitor.fastpath_hits m + Monitor.graph_hits m + Monitor.searches_run m);
  Alcotest.(check int) "no backtracking search ran" 0 (Monitor.searches_run m)

let test_monitor_graph_unsat () =
  (* A read served before the writer is even commit-pending: the graph
     decides Unsat without a search, and the monitor reports the sticky
     violation at the right prefix. *)
  let h = Parse.of_string_exn "W1(X,1)->ok R2(X)->1 C2->C C1->C" in
  check_unsat "search agrees the stream violates" (Du_opacity.check h);
  (match Conflict_graph.check h with
  | Conflict_graph.Unsat _ -> ()
  | Conflict_graph.Sat _ -> Alcotest.fail "graph accepted a du violation"
  | Conflict_graph.Ambiguous why ->
      Alcotest.failf "graph must decide this unique-writes stream: %s" why);
  let m = Monitor.create ~max_nodes () in
  let outcome = Monitor.push_all m (History.to_list h) in
  (match outcome with
  | `Violation _ -> ()
  | `Ok -> Alcotest.fail "monitor accepted a du violation"
  | `Budget why -> Alcotest.failf "budget on a 8-event history: %s" why);
  Alcotest.(check int) "violating prefix" 4
    (Option.value ~default:(-1) (Monitor.violation_index m));
  Alcotest.(check int) "the graph decided it" 0 (Monitor.searches_run m)

(* --- offline check smoke at a non-toy size -------------------------------- *)

let test_offline_medium () =
  let params =
    {
      Stm.Workload.default with
      n_threads = 4;
      txns_per_thread = 250;
      ops_per_txn = 4;
      n_vars = 16;
      values = `Unique;
    }
  in
  let h = (Sim.Runner.run ~stm:"tl2" ~params ~seed:3 ()).Sim.Runner.history in
  let r, stats = Conflict_graph.check_stats h in
  (match r with
  | Conflict_graph.Sat c -> (
      match Serialization.validate ~claim:Serialization.Du_opaque h c with
      | Ok () -> ()
      | Error why -> Alcotest.failf "certificate rejected: %s" why)
  | Conflict_graph.Unsat why -> Alcotest.failf "recorded TL2 unsat: %s" why
  | Conflict_graph.Ambiguous why ->
      Alcotest.failf "unique-writes stream ambiguous: %s" why);
  if stats.Conflict_graph.nodes < 500 then
    Alcotest.failf "expected a non-toy run, interned %d nodes"
      stats.Conflict_graph.nodes

let suite =
  [
    ( "conflict graph",
      [
        test "figure catalog parity" test_catalog;
        test "Finding 3 routes to fallback" test_corollary2_gap_fallback;
        test "incremental prefix verdicts" test_inc_prefix_verdicts;
        test "monitor graph fast path" test_monitor_graph_hits;
        test "monitor graph Unsat path" test_monitor_graph_unsat;
        slow "offline check, ~10k events" test_offline_medium;
        prop_graph_agrees;
      ] );
  ]
