open Tm_safety
open Helpers

let test_dsl_fragments () =
  let h = Dsl.(history [ r 1 x 0; w 1 y 5; c 1 ]) in
  Alcotest.(check int) "events" 6 (History.length h);
  Alcotest.(check (list int)) "committed" [ 1 ] (History.committed h);
  let h = Dsl.(history [ w_inv 1 x 1; w_ok 1; c_inv 1; committed 1 ]) in
  Alcotest.(check (list int)) "split ops commit" [ 1 ] (History.committed h);
  let h = Dsl.(history [ r_inv 1 x; aborted 1 ]) in
  Alcotest.(check (list int)) "aborted read" [ 1 ] (History.aborted h)

let test_dsl_seq () =
  let h =
    Dsl.(seq [ (fun k -> [ w k x 1; c k ]); (fun k -> [ r k x 1; c k ]) ])
  in
  Alcotest.(check (list int)) "two txns" [ 1; 2 ] (History.txns h);
  Alcotest.(check bool) "t-sequential" true (History.is_t_sequential h)

let test_dsl_rejects () =
  match Dsl.(history [ r_inv 1 x; r_inv 1 y ]) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let roundtrip name h =
  test name (fun () ->
      let text = Parse.to_text h in
      match Parse.of_string text with
      | Ok h' ->
          Alcotest.(check (list event)) "roundtrip"
            (History.to_list h) (History.to_list h')
      | Error e -> Alcotest.failf "parse of %S failed: %s" text e)

let parse_ok name text expected_len =
  test name (fun () ->
      match Parse.of_string text with
      | Ok h -> Alcotest.(check int) "events" expected_len (History.length h)
      | Error e -> Alcotest.failf "%s" e)

let parse_err name text =
  test name (fun () ->
      match Parse.of_string text with
      | Ok _ -> Alcotest.failf "expected parse error for %S" text
      | Error _ -> ())

let parse_tests =
  [
    parse_ok "complete ops" "R1(X)->0 W1(Y,5)->ok C1->C" 6;
    parse_ok "pending tryC" "W1(X,1)->ok C1" 3;
    parse_ok "delayed response" "W1(X,1)->ok C1 R2(X)->1 ret1:C" 6;
    parse_ok "tryA" "A1->A" 2;
    parse_ok "aborted read" "R1(X)->A" 2;
    parse_ok "aborted write" "W1(X,1)->A" 2;
    parse_ok "negative value" "W1(X,-3)->ok R2(X)->-3" 4;
    parse_ok "extended var names" "W1(X9,1)->ok R2(U)->0" 4;
    parse_ok "comments and newlines" "R1(X)->0 # first read\nC1->C" 4;
    parse_ok "empty input" "" 0;
    parse_err "unknown token" "Q1(X)";
    parse_err "bad response" "R1(X)->x";
    parse_err "trailing garbage" "R1(X)->0zzz";
    parse_err "ill-formed history" "R1(X)->0 ret1:ok";
    parse_err "write needs value" "W1(X)->ok";
    parse_err "double response" "R1(X)->0 ret1:0";
  ]

(* Parse errors locate the offending token: "line N, token M: ...". *)
let parse_err_at name text prefix =
  test name (fun () ->
      match Parse.of_string text with
      | Ok _ -> Alcotest.failf "expected parse error for %S" text
      | Error e ->
          if not (String.starts_with ~prefix e) then
            Alcotest.failf "error %S does not start with %S" e prefix)

let position_tests =
  [
    parse_err_at "position: first token" "Q1(X)" "line 1, token 1:";
    parse_err_at "position: second token" "R1(X)->0 W1(Y)->ok"
      "line 1, token 2:";
    parse_err_at "position: second line" "R1(X)->0 # first read\nC1->x"
      "line 2, token 1:";
    parse_err_at "position: token index restarts per line"
      "R1(X)->0\nW2(Y,1)->ok   R2(Y)->oops" "line 2, token 2:";
  ]

let test_var_name_aliases () =
  (* Z and X2 are the same variable. *)
  let h1 = Parse.of_string_exn "W1(Z,1)->ok C1->C" in
  let h2 = Parse.of_string_exn "W1(X2,1)->ok C1->C" in
  Alcotest.(check (list event)) "alias" (History.to_list h1) (History.to_list h2)

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i =
    i + n <= m && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let test_timeline () =
  let t = Pretty.timeline Figures.fig3 in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Fmt.str "timeline contains %s" needle)
        true (contains t needle))
    [ "T1:"; "T2:"; "W(X,1)"; ">ok"; "R(X)"; ">1"; "tryC"; ">C" ]

let suite =
  [
    ( "dsl",
      [
        test "fragments" test_dsl_fragments;
        test "seq" test_dsl_seq;
        test "rejects ill-formed" test_dsl_rejects;
      ] );
    ( "parse",
      parse_tests @ position_tests
      @ [
          test "variable name aliases" test_var_name_aliases;
          roundtrip "roundtrip fig1" Figures.fig1;
          roundtrip "roundtrip fig2" (Figures.fig2 ~readers:6);
          roundtrip "roundtrip fig3" Figures.fig3;
          roundtrip "roundtrip fig4" Figures.fig4;
          roundtrip "roundtrip fig5" Figures.fig5;
          roundtrip "roundtrip fig6" Figures.fig6;
        ] );
    ("pretty", [ test "timeline" test_timeline ]);
  ]
