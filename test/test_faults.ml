open Tm_safety
open Helpers

(* Fault injection: crash/stall/omission plans produce genuinely incomplete
   histories, deterministically, and the checkers terminate on all of them. *)

let params =
  {
    Stm.Workload.default with
    n_threads = 3;
    txns_per_thread = 5;
    ops_per_txn = 3;
    n_vars = 4;
    read_ratio = 0.5;
  }

let run_faulted ?(stm = "tl2") ~spec ~seed () =
  Sim.Runner.run ~faults:spec ~stm ~params ~seed ()

let well_formed h =
  match History.of_events (History.to_list h) with
  | Ok _ -> true
  | Error _ -> false

(* --- crash --------------------------------------------------------------- *)

let test_crash_pending_forever () =
  let spec =
    { Stm.Faults.none with Stm.Faults.crash = Some { thread = 0; step = 2 } }
  in
  let r = run_faulted ~spec ~seed:1 () in
  let h = r.Sim.Runner.history in
  Alcotest.(check int) "one crash" 1 r.Sim.Runner.stats.Stm.Harness.crashes;
  Alcotest.(check bool) "well-formed" true (well_formed h);
  let incomplete =
    List.filter (fun t -> not (Txn.is_t_complete t)) (History.infos h)
  in
  Alcotest.(check bool) "crashed txn left incomplete" true
    (List.length incomplete >= 1)

(* --- stall --------------------------------------------------------------- *)

let test_stall_commit_pending () =
  let spec =
    { Stm.Faults.none with Stm.Faults.stall = Some { thread = 1; step = 0 } }
  in
  let r = run_faulted ~spec ~seed:2 () in
  let h = r.Sim.Runner.history in
  Alcotest.(check int) "one stall" 1 r.Sim.Runner.stats.Stm.Harness.stalls;
  Alcotest.(check bool) "a tryC is permanently pending" true
    (List.length (History.commit_pending h) >= 1);
  (* The zombie's effects are published, but reading from it is du-legal:
     its tryC was invoked.  The monitor must accept history + prefixes. *)
  let m = Monitor.create ~max_nodes:2_000_000 () in
  match Monitor.push_all m (History.to_list h) with
  | `Ok -> ()
  | `Violation why -> Alcotest.failf "stalled history not du-opaque: %s" why
  | `Budget why -> Alcotest.failf "budget: %s" why

(* --- spurious abort ------------------------------------------------------ *)

let test_spurious_counted () =
  let spec =
    {
      Stm.Faults.none with
      Stm.Faults.spurious = [ { Stm.Faults.thread = 0; step = 1 } ];
    }
  in
  let r = run_faulted ~spec ~seed:3 () in
  Alcotest.(check int) "one spurious abort" 1
    r.Sim.Runner.stats.Stm.Harness.spurious_aborts;
  Alcotest.(check bool) "history still well-formed" true
    (well_formed r.Sim.Runner.history)

(* --- omission ------------------------------------------------------------ *)

let test_omission_is_prefix () =
  let clean = Sim.Runner.run ~stm:"tl2" ~params ~seed:4 () in
  let spec = { Stm.Faults.none with Stm.Faults.omission = Some 17 } in
  let faulted = run_faulted ~spec ~seed:4 () in
  let ce = History.to_list clean.Sim.Runner.history in
  let fe = History.to_list faulted.Sim.Runner.history in
  Alcotest.(check int) "17 events survive" (min 17 (List.length ce))
    (List.length fe);
  Alcotest.(check (list event)) "recorder dropped exactly the tail"
    (List.filteri (fun i _ -> i < 17) ce)
    fe

(* --- determinism --------------------------------------------------------- *)

let test_deterministic_replay () =
  let spec =
    {
      Stm.Faults.crash = Some { Stm.Faults.thread = 2; step = 7 };
      stall = Some { Stm.Faults.thread = 0; step = 3 };
      spurious = [ { Stm.Faults.thread = 1; step = 3 } ];
      omission = None;
    }
  in
  let r1 = run_faulted ~spec ~seed:11 () in
  let r2 = run_faulted ~spec ~seed:11 () in
  Alcotest.(check (list event)) "same seed+spec, same history"
    (History.to_list r1.Sim.Runner.history)
    (History.to_list r2.Sim.Runner.history)

let test_sample_deterministic () =
  let s nth = Stm.Faults.sample ~n_threads:3 ~horizon:20 ~seed:nth () in
  Alcotest.(check string) "sampled plan replays from its seed"
    (Fmt.str "%a" Stm.Faults.pp_spec (s 42))
    (Fmt.str "%a" Stm.Faults.pp_spec (s 42))

(* --- retry policies ------------------------------------------------------ *)

let test_retry_backoff () =
  let r = Stm.Faults.retry_backoff ~base:2 ~cap:32 10 in
  Alcotest.(check int) "attempts" 10 r.Stm.Faults.max_attempts;
  Alcotest.(check int) "first failure" 2 (r.Stm.Faults.backoff 1);
  Alcotest.(check int) "doubles" 4 (r.Stm.Faults.backoff 2);
  Alcotest.(check int) "caps" 32 (r.Stm.Faults.backoff 20);
  let fixed = Stm.Faults.retry_fixed 5 in
  Alcotest.(check int) "fixed never pauses" 0 (fixed.Stm.Faults.backoff 3)

(* --- campaign ------------------------------------------------------------ *)

let test_campaign () =
  let seeds = List.init 15 (fun i -> i + 1) in
  let reports =
    Sim.Faults.campaign ~max_nodes:2_000_000
      ~kinds:[ `Crash; `Stall; `Spurious ] ~stm:"tl2" ~params ~seeds ()
  in
  Alcotest.(check int) "one report per seed" (List.length seeds)
    (List.length reports);
  let pending_seen = ref 0 in
  List.iter
    (fun (r : Sim.Faults.report) ->
      let h = r.Sim.Faults.history in
      if r.Sim.Faults.commit_pending > 0 then incr pending_seen;
      Alcotest.(check bool)
        (Fmt.str "seed %d well-formed" r.Sim.Faults.seed)
        true (well_formed h);
      (match r.Sim.Faults.outcome with
      | Some `Ok -> ()
      | Some (`Violation why) ->
          Alcotest.failf "seed %d: tl2 under faults not du-opaque: %s@.%s"
            r.Sim.Faults.seed why (Pretty.timeline h)
      | Some (`Budget why) ->
          Alcotest.failf "seed %d: budget: %s" r.Sim.Faults.seed why
      | None -> Alcotest.failf "seed %d: checking was on" r.Sim.Faults.seed);
      (* Definition 2 literally: every enumerated completion is one, and the
         faulted history is an event-prefix of its canonical completion. *)
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Fmt.str "seed %d completion" r.Sim.Faults.seed)
            true
            (Completion.is_completion c ~of_:h))
        (Completion.enumerate ~limit:4 h))
    reports;
  Alcotest.(check bool)
    (Fmt.str "some campaign run left a tryC pending (%d did)" !pending_seen)
    true (!pending_seen >= 1)

(* --- properties (QCheck over seeds) -------------------------------------- *)

let arb_faulted_run =
  QCheck2.Gen.map
    (fun seed ->
      let seed = 1 + (abs seed mod 1000) in
      let spec =
        Stm.Faults.sample
          ~kinds:[ `Crash; `Stall; `Spurious; `Omission ]
          ~n_threads:params.Stm.Workload.n_threads
          ~horizon:(Sim.Faults.horizon params) ~seed ()
      in
      (seed, spec, run_faulted ~spec ~seed ()))
    QCheck2.Gen.int

let prop_well_formed =
  qtest ~count:30 "faulted histories are well-formed" arb_faulted_run
    (fun (_, _, r) -> well_formed r.Sim.Runner.history)

let prop_prefix_of_own_completion =
  qtest ~count:30 "history is a prefix of its canonical completion"
    arb_faulted_run (fun (_, _, r) ->
      let h = r.Sim.Runner.history in
      let c = Completion.canonical ~decide:(fun _ -> true) h in
      let he = History.to_list h and ce = History.to_list c in
      List.length he <= List.length ce
      && List.for_all2
           (fun a b -> Event.equal a b)
           he
           (List.filteri (fun i _ -> i < List.length he) ce))

let prop_du_opacity_antitone =
  (* Prefix-closure (Theorem 5 direction used by the monitor): if the
     faulted history is du-opaque, so is every truncation of it. *)
  qtest ~count:15 "du-opacity survives truncation" arb_faulted_run
    (fun (seed, _, r) ->
      let h = r.Sim.Runner.history in
      let check h = Du_opacity.check_fast ~max_nodes:1_000_000 h in
      match check h with
      | Verdict.Sat _ ->
          List.for_all
            (fun k ->
              match check (History.prefix h k) with
              | Verdict.Sat _ -> true
              | Verdict.Unsat _ | Verdict.Unknown _ -> false)
            [
              History.length h / 3;
              History.length h / 2;
              2 * History.length h / 3;
            ]
      | Verdict.Unsat why ->
          QCheck2.Test.fail_reportf "seed %d: tl2 not du-opaque: %s" seed why
      | Verdict.Unknown _ -> true)

let suite =
  [
    ( "faults: injection",
      [
        test "crash leaves an invocation pending forever"
          test_crash_pending_forever;
        test "stall leaves a commit-pending zombie" test_stall_commit_pending;
        test "spurious aborts are counted" test_spurious_counted;
        test "omission drops exactly the log tail" test_omission_is_prefix;
        test "same seed and plan replay the same history"
          test_deterministic_replay;
        test "plan sampling is seed-deterministic" test_sample_deterministic;
        test "retry policies" test_retry_backoff;
      ] );
    ( "faults: campaign",
      [
        slow "tl2 stays du-opaque under a 15-seed campaign" test_campaign;
        prop_well_formed;
        prop_prefix_of_own_completion;
        prop_du_opacity_antitone;
      ] );
  ]
