open Tm_safety
open Helpers

(* Finding 1: a machine-checked counterexample to the paper's Lemma 1 under
   duplicate writes (see Tm_figures.Findings and EXPERIMENTS.md). *)

let h, (order, committed), prefix_len = Tm_figures.Findings.lemma1_gap

let test_full_history_du_opaque () =
  (* The specific serialization S = T1,T3,T6,T5 named by the finding is a
     valid du-opaque serialization of the full history. *)
  let s = Serialization.make ~order ~committed in
  (match Serialization.validate ~claim:Serialization.Du_opaque h s with
  | Ok () -> ()
  | Error why -> Alcotest.failf "S rejected: %s" why);
  check_sat "full history" (Du_opacity.check h)

let test_prefix_is_du_opaque () =
  (* On THIS example the prefix stays du-opaque — it has a serialization,
     just not one inheriting S's order.  (Corollary 2's statement fails in
     general: see Finding 3 below.) *)
  let p = History.prefix h prefix_len in
  check_sat "prefix" (Du_opacity.check p);
  let s =
    Serialization.make ~order:Tm_figures.Findings.lemma1_gap_working_order
      ~committed:[ 1; 3 ]
  in
  match Serialization.validate ~claim:Serialization.Du_opaque p s with
  | Ok () -> ()
  | Error why -> Alcotest.failf "working order rejected: %s" why

let test_projection_fails () =
  (* Lemma 1's construction (same relative order, inherited decisions)
     does NOT yield a serialization of the prefix... *)
  let p = History.prefix h prefix_len in
  let s = Serialization.make ~order ~committed in
  let si = Lemmas.project_prefix h s prefix_len in
  (match Serialization.validate ~claim:Serialization.Du_opaque p si with
  | Ok () -> Alcotest.fail "expected the paper's construction to fail here"
  | Error _ -> ());
  (* ... and no decision vector can repair it: the order T1,T3,T5 is the
     only subsequence of seq(S) over the prefix's transactions, T1 and T3
     are committed in the prefix (decisions forced), and T5 aborts either
     way, so its read of 1 always sits above T3's committed 3. *)
  List.iter
    (fun committed ->
      let cand =
        Serialization.make ~order:Tm_figures.Findings.lemma1_gap_projected_order
          ~committed
      in
      match Serialization.validate ~claim:Serialization.Du_opaque p cand with
      | Ok () ->
          Alcotest.failf "unexpected repair with committed=%a"
            Fmt.(Dump.list int)
            committed
      | Error _ -> ())
    [ [ 1; 3 ]; [ 1; 3; 5 ] ]

let test_unique_writes_is_safe () =
  (* Under unique writes the proof step is valid; the construction must
     never fail.  (Also covered statistically by the property suite.) *)
  let params =
    { Gen.default with n_txns = 6; n_threads = 3; max_ops = 3; unique_writes = true }
  in
  for seed = 1 to 200 do
    let h = Gen.run_seed params seed in
    match Du_opacity.check ~max_nodes:500_000 h with
    | Verdict.Sat s ->
        List.iter
          (fun i ->
            let si = Lemmas.project_prefix h s i in
            match
              Serialization.validate ~claim:Serialization.Du_opaque
                (History.prefix h i) si
            with
            | Ok () -> ()
            | Error why ->
                Alcotest.failf "seed %d prefix %d: construction failed under \
                                unique writes: %s"
                  seed i why)
          (History.response_indices h)
    | Verdict.Unsat _ | Verdict.Unknown _ -> ()
  done

let test_duplicate_writes_premise () =
  (* The counterexample indeed features duplicate writes (T1 and T6 both
     write 1 to Z) — outside Theorem 11's setting, as required. *)
  Alcotest.(check bool) "duplicate writes" false (Polygraph.unique_writes h)

(* Finding 3: Corollary 2's statement itself fails under duplicate writes —
   a du-opaque history (tm soak's shrunk discovery) whose prefix is not. *)

let g_h, g_prefix_len = Tm_figures.Findings.corollary2_gap

let test_cor2_full_du_opaque () =
  let order, committed = Tm_figures.Findings.corollary2_gap_witness in
  let s = Serialization.make ~order ~committed in
  (match Serialization.validate ~claim:Serialization.Du_opaque g_h s with
  | Ok () -> ()
  | Error why -> Alcotest.failf "witness rejected: %s" why);
  check_sat "full history" (Du_opacity.check g_h)

let test_cor2_prefix_not_du_opaque () =
  check_unsat "prefix without T7's tryC"
    (Du_opacity.check (History.prefix g_h g_prefix_len))

let test_cor2_duplicate_writes_premise () =
  (* T2 and T7 both write 1 to Y — outside Theorem 11's setting.  Under
     unique writes Corollary 2 holds and this counterexample is impossible. *)
  Alcotest.(check bool) "duplicate writes" false (Polygraph.unique_writes g_h)

let test_cor2_oracle_reports_closure_gap () =
  (* The lockstep oracle must classify the sticky-vs-batch disagreement on
     this history as a benign closure gap, not a discrepancy. *)
  let r = Oracle.lockstep g_h in
  (match r.Oracle.findings with
  | [] -> ()
  | fs ->
      Alcotest.failf "unexpected findings: %s"
        (String.concat "; " (List.map (Fmt.str "%a" Oracle.pp_finding) fs)));
  Alcotest.(check bool) "closure gap flagged" true r.Oracle.closure_gap

let test_cor2_unique_writes_no_gap () =
  (* Where Corollary 2 applies, the oracle must never see a closure gap —
     and any disagreement at all would be a finding. *)
  let params =
    {
      Gen.default with
      n_txns = 6;
      n_threads = 3;
      max_ops = 3;
      unique_writes = true;
    }
  in
  for seed = 1 to 60 do
    let h = Gen.run_seed params seed in
    let r = Oracle.lockstep ~max_nodes:500_000 h in
    (match r.Oracle.findings with
    | [] -> ()
    | fs ->
        Alcotest.failf "seed %d: findings on a unique-writes history: %s" seed
          (String.concat "; " (List.map (Fmt.str "%a" Oracle.pp_finding) fs)));
    if r.Oracle.closure_gap then
      Alcotest.failf "seed %d: closure gap on a unique-writes history" seed
  done

(* Finding 2: the paper's informal §4.2 rendering of TMS2 admits fig4,
   which is not du-opaque — so the rendering is weaker than the TMS2 the
   conjecture "TMS2 ⊆ du-opacity" is about. *)
let test_tms2_rendering_gap () =
  check_sat "fig4 satisfies the TMS2 rendering" (Tms2.check Figures.fig4);
  check_unsat "fig4 is not du-opaque" (Du_opacity.check Figures.fig4);
  Alcotest.(check (list (pair int int))) "no TMS2 edges fire on fig4" []
    (Tms2.edges Figures.fig4)

let suite =
  [
    ( "findings: TMS2 rendering",
      [ test "fig4 separates the rendering from du-opacity" test_tms2_rendering_gap ] );
    ( "findings: Lemma 1 gap",
      [
        test "the full history and its serialization S" test_full_history_du_opaque;
        test "the prefix is du-opaque (Cor 2 statement survives)" test_prefix_is_du_opaque;
        test "the paper's projection fails, unrepairably" test_projection_fails;
        test "under unique writes the construction is safe" test_unique_writes_is_safe;
        test "counterexample uses duplicate writes" test_duplicate_writes_premise;
      ] );
    ( "findings: Corollary 2 gap",
      [
        test "the full history is du-opaque (witness validates)"
          test_cor2_full_du_opaque;
        test "its prefix is not du-opaque" test_cor2_prefix_not_du_opaque;
        test "counterexample uses duplicate writes"
          test_cor2_duplicate_writes_premise;
        test "the oracle calls it a closure gap, not a discrepancy"
          test_cor2_oracle_reports_closure_gap;
        test "under unique writes no gap ever appears"
          test_cor2_unique_writes_no_gap;
      ] );
  ]
