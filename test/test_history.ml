open Tm_safety
open Helpers
open Event

let ill_formed name events =
  test name (fun () ->
      match History.of_events events with
      | Ok _ -> Alcotest.failf "%s: expected ill-formed" name
      | Error _ -> ())

let well_formed name events =
  test name (fun () ->
      match History.of_events events with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %a" name History.pp_error e)

let formation_tests =
  [
    well_formed "empty" [];
    well_formed "lone invocation" [ Inv (1, Read 0) ];
    well_formed "complete read" [ Inv (1, Read 0); Res (1, Read_ok 0) ];
    well_formed "interleaved transactions"
      [
        Inv (1, Read 0);
        Inv (2, Write (0, 1));
        Res (2, Write_ok);
        Res (1, Read_ok 0);
      ];
    ill_formed "transaction id 0 is reserved" [ Inv (0, Read 0) ];
    ill_formed "negative transaction id" [ Inv (-1, Read 0) ];
    ill_formed "response without invocation" [ Res (1, Read_ok 0) ];
    ill_formed "response for unknown transaction"
      [ Inv (1, Read 0); Res (2, Read_ok 0) ];
    ill_formed "double invocation while pending"
      [ Inv (1, Read 0); Inv (1, Read 1) ];
    ill_formed "mismatched response kind"
      [ Inv (1, Read 0); Res (1, Write_ok) ];
    ill_formed "committed response to a read"
      [ Inv (1, Read 0); Res (1, Committed) ];
    ill_formed "event after commit"
      [ Inv (1, Try_commit); Res (1, Committed); Inv (1, Read 0) ];
    ill_formed "event after abort"
      [ Inv (1, Try_abort); Res (1, Aborted); Inv (1, Read 0) ];
    ill_formed "double response"
      [ Inv (1, Read 0); Res (1, Read_ok 0); Res (1, Read_ok 0) ];
    well_formed "abort response to anything"
      [ Inv (1, Write (0, 3)); Res (1, Aborted) ];
  ]

(* A reference history used by most accessor tests:
   T1: R(X)->0 W(Y,1)->ok tryC->C       (committed)
   T2:      R(Y)->0 ................    (live, complete)
   T3:                      R(X) ...    (live, pending read)
   T4 after T1:  W(X,7)->ok tryC        (commit-pending)  *)
let h =
  History.of_events_exn
    [
      Inv (1, Read 0);
      Res (1, Read_ok 0);
      Inv (2, Read 1);
      Res (2, Read_ok 0);
      Inv (1, Write (1, 1));
      Res (1, Write_ok);
      Inv (1, Try_commit);
      Res (1, Committed);
      Inv (3, Read 0);
      Inv (4, Write (0, 7));
      Res (4, Write_ok);
      Inv (4, Try_commit);
    ]

let test_accessors () =
  Alcotest.(check int) "length" 12 (History.length h);
  Alcotest.(check (list int)) "txns" [ 1; 2; 3; 4 ] (History.txns h);
  Alcotest.(check (list int)) "committed" [ 1 ] (History.committed h);
  Alcotest.(check (list int)) "aborted" [] (History.aborted h);
  Alcotest.(check (list int)) "commit-pending" [ 4 ] (History.commit_pending h);
  Alcotest.(check bool) "not complete" false (History.is_complete h);
  Alcotest.(check bool) "not t-complete" false (History.is_t_complete h);
  Alcotest.(check event) "get" (Inv (3, Read 0)) (History.get h 8)

let test_txn_info () =
  let t1 = History.info h 1 in
  Alcotest.(check bool) "t1 t-complete" true (Txn.is_t_complete t1);
  Alcotest.(check int) "t1 first" 0 t1.Txn.first_index;
  Alcotest.(check int) "t1 last" 7 t1.Txn.last_index;
  Alcotest.(check (list int)) "t1 rset" [ 0 ] (Txn.read_set t1);
  Alcotest.(check (list int)) "t1 wset" [ 1 ] (Txn.write_set t1);
  let t2 = History.info h 2 in
  Alcotest.(check bool) "t2 complete" true (Txn.is_complete t2);
  Alcotest.(check bool) "t2 not t-complete" false (Txn.is_t_complete t2);
  let t3 = History.info h 3 in
  Alcotest.(check bool) "t3 not complete" false (Txn.is_complete t3);
  let t4 = History.info h 4 in
  Alcotest.(check bool) "t4 commit-pending" true
    (t4.Txn.status = Txn.Commit_pending);
  Alcotest.(check (option int)) "t4 tryC inv" (Some 11) (Txn.tryc_inv_index t4);
  Alcotest.(check (list bool)) "t4 choices" [ true; false ]
    (Txn.commit_choices t4);
  Alcotest.(check bool) "unknown txn" true
    (match History.info h 9 with
    | exception Not_found -> true
    | _ -> false)

let test_reads_classification () =
  let reads = Txn.reads (History.info h 1) in
  Alcotest.(check int) "t1 one read" 1 (List.length reads);
  let r = List.hd reads in
  Alcotest.(check bool) "external" true (r.Txn.kind = `External);
  Alcotest.(check int) "value" 0 r.Txn.value;
  Alcotest.(check int) "res index" 1 r.Txn.res_index;
  (* internal read *)
  let h' =
    History.of_events_exn
      [
        Inv (1, Write (0, 5));
        Res (1, Write_ok);
        Inv (1, Read 0);
        Res (1, Read_ok 5);
      ]
  in
  match Txn.reads (History.info h' 1) with
  | [ r ] -> Alcotest.(check bool) "internal of 5" true (r.Txn.kind = `Internal 5)
  | _ -> Alcotest.fail "expected one read"

let test_final_writes () =
  let h' =
    History.of_events_exn
      [
        Inv (1, Write (0, 1));
        Res (1, Write_ok);
        Inv (1, Write (0, 2));
        Res (1, Write_ok);
        Inv (1, Write (1, 9));
        Res (1, Write_ok);
        Inv (1, Write (2, 3));
        Res (1, Aborted);
      ]
  in
  let t = History.info h' 1 in
  Alcotest.(check (list (pair int int))) "final writes (aborted write ignored)"
    [ (0, 2); (1, 9) ]
    (Txn.final_writes t);
  Alcotest.(check (list (pair int int))) "all writes"
    [ (0, 1); (0, 2); (1, 9) ]
    (Txn.writes t)

let test_real_time () =
  Alcotest.(check bool) "T1 < T4" true (History.rt_precedes h 1 4);
  Alcotest.(check bool) "not T4 < T1" false (History.rt_precedes h 4 1);
  Alcotest.(check bool) "T1 / T2 overlap" true (History.overlap h 1 2);
  (* T2 is not t-complete, so it precedes nothing even though its last event
     is early. *)
  Alcotest.(check bool) "live precedes nothing" false (History.rt_precedes h 2 4);
  Alcotest.(check bool) "overlap t2 t4" true (History.overlap h 2 4)

let test_live_sets () =
  Alcotest.(check (list int)) "Lset(T1)" [ 1; 2 ] (History.live_set h 1);
  (* T3's only event (index 8) precedes T4's first (index 9): disjoint. *)
  Alcotest.(check (list int)) "Lset(T3)" [ 3 ] (History.live_set h 3);
  (* T2's span is events 2..3, inside T1's span. *)
  Alcotest.(check (list int)) "Lset(T2)" [ 1; 2 ] (History.live_set h 2);
  Alcotest.(check bool) "T2 ≺LS T3" true (History.ls_precedes h 2 3);
  Alcotest.(check bool) "not T1 ≺LS T2" false (History.ls_precedes h 1 2)

let test_prefix () =
  let p = History.prefix h 8 in
  Alcotest.(check int) "length" 8 (History.length p);
  Alcotest.(check (list int)) "txns" [ 1; 2 ] (History.txns p);
  Alcotest.(check bool) "T1 committed in prefix" true
    (List.mem 1 (History.committed p));
  let p0 = History.prefix h 0 in
  Alcotest.(check int) "empty prefix" 0 (History.length p0);
  Alcotest.(check bool) "full prefix is same" true
    (History.equivalent h (History.prefix h (History.length h)))

let test_extend () =
  let h0 = History.empty in
  let h1 =
    match History.extend h0 (Inv (1, Read 0)) with
    | Ok h -> h
    | Error e -> Alcotest.failf "extend: %a" History.pp_error e
  in
  let h2 =
    match History.extend h1 (Res (1, Read_ok 0)) with
    | Ok h -> h
    | Error e -> Alcotest.failf "extend: %a" History.pp_error e
  in
  Alcotest.(check int) "length" 2 (History.length h2);
  (* Extending the same snapshot twice must not corrupt the first result. *)
  let h2' =
    match History.extend h1 (Res (1, Read_ok 42)) with
    | Ok h -> h
    | Error e -> Alcotest.failf "extend: %a" History.pp_error e
  in
  Alcotest.(check event) "first branch intact" (Res (1, Read_ok 0))
    (History.get h2 1);
  Alcotest.(check event) "second branch intact" (Res (1, Read_ok 42))
    (History.get h2' 1);
  match History.extend h2 (Inv (1, Read 0)) with
  | Ok h3 -> Alcotest.(check int) "extended again" 3 (History.length h3)
  | Error e -> Alcotest.failf "extend: %a" History.pp_error e

let test_extend_rejects () =
  match History.extend History.empty (Res (1, Read_ok 0)) with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error _ -> ()

let test_project () =
  let p = History.project h ~keep:(fun k -> k = 1) in
  Alcotest.(check (list int)) "txns" [ 1 ] (History.txns p);
  Alcotest.(check int) "length" 6 (History.length p)

let test_equivalent () =
  (* Same per-transaction sequences, different interleaving. *)
  let a =
    History.of_events_exn
      [ Inv (1, Read 0); Inv (2, Read 1); Res (1, Read_ok 0); Res (2, Read_ok 0) ]
  in
  let b =
    History.of_events_exn
      [ Inv (1, Read 0); Res (1, Read_ok 0); Inv (2, Read 1); Res (2, Read_ok 0) ]
  in
  Alcotest.(check bool) "equivalent" true (History.equivalent a b);
  let c =
    History.of_events_exn
      [ Inv (1, Read 0); Res (1, Read_ok 1); Inv (2, Read 1); Res (2, Read_ok 0) ]
  in
  Alcotest.(check bool) "different value" false (History.equivalent a c);
  let d = History.of_events_exn [ Inv (1, Read 0); Res (1, Read_ok 0) ] in
  Alcotest.(check bool) "different txns" false (History.equivalent a d)

let test_sequential_predicates () =
  let seq = Dsl.(seq [ (fun k -> [ r k x 0; c k ]); (fun k -> [ r k x 0; c k ]) ]) in
  Alcotest.(check bool) "t-sequential" true (History.is_t_sequential seq);
  Alcotest.(check bool) "sequential" true (History.is_sequential seq);
  Alcotest.(check bool) "h not t-sequential" false (History.is_t_sequential h);
  (* fig5 is sequential (invocations immediately answered) but transactions
     overlap, so it is not t-sequential. *)
  Alcotest.(check bool) "fig5 sequential" true (History.is_sequential Figures.fig5);
  Alcotest.(check bool) "fig5 not t-sequential" false
    (History.is_t_sequential Figures.fig5)

let test_response_indices () =
  let idx = History.response_indices h in
  Alcotest.(check (list int)) "indices" [ 2; 4; 6; 8; 11 ] idx

(* of_events_prefix: the longest well-formed prefix plus the torn tail —
   what Parallel.run uses to salvage a log cut mid-operation. *)
let test_of_events_prefix () =
  let events =
    History.to_list (Parse.of_string_exn "W1(X,1)->ok C1->C R2(X)->1 C2->C")
  in
  let full, tail = History.of_events_prefix events in
  Alcotest.(check (list event)) "full prefix" events (History.to_list full);
  Alcotest.(check (list event)) "empty tail" [] tail;
  (* a response with no pending invocation tears the log *)
  let orphan = Res (9, Committed) in
  let cut, tail = History.of_events_prefix (events @ [ orphan ]) in
  Alcotest.(check (list event)) "longest prefix" events (History.to_list cut);
  Alcotest.(check (list event)) "torn tail" [ orphan ] tail;
  (* everything from the first offence on is dropped, even events that
     would be well-formed on their own *)
  let suffix = [ orphan; Inv (3, Read 0); Res (3, Read_ok 1) ] in
  let cut, tail = History.of_events_prefix (events @ suffix) in
  Alcotest.(check (list event)) "prefix stops at offence" events
    (History.to_list cut);
  Alcotest.(check (list event)) "whole torn suffix" suffix tail;
  let empty, tail = History.of_events_prefix [ orphan ] in
  Alcotest.(check int) "empty prefix" 0 (History.length empty);
  Alcotest.(check (list event)) "all torn" [ orphan ] tail

let suite =
  [
    ("history: well-formedness", formation_tests);
    ( "history: accessors",
      [
        test "basic accessors" test_accessors;
        test "transaction summaries" test_txn_info;
        test "read classification" test_reads_classification;
        test "final writes" test_final_writes;
        test "real-time order" test_real_time;
        test "live sets" test_live_sets;
        test "prefix" test_prefix;
        test "extend" test_extend;
        test "extend rejects ill-formed" test_extend_rejects;
        test "project" test_project;
        test "equivalence" test_equivalent;
        test "sequential predicates" test_sequential_predicates;
        test "response indices" test_response_indices;
        test "of_events_prefix salvages torn logs" test_of_events_prefix;
      ] );
  ]
