(* Last-use opacity: the early-release criterion and its lattice position.

   The separating fixtures are the subsystem's reason to exist: histories
   that du-opacity refuses but last-use opacity accepts (a reader observed
   a closed-but-uncommitted write), plus the cascading-abort history that
   both refuse.  The containment property pins the theorem the oracle and
   verify engine gate on: du-opaque ⇒ last-use-opaque, on every history
   from every soak source. *)

open Tm_safety
open Helpers

let of_text = Parse.of_string_exn

let lu h = Last_use_opacity.to_verdict (Last_use_opacity.check h)
let du h = Du_opacity.check h

let check_lu_certified name h v =
  check_certified ~claim:Serialization.Last_use name h v

(* --- Separating fixtures ------------------------------------------------- *)

(* T1's write to X is its closing write (its last), so once it has responded
   T2 may read the value under last-use opacity — but T1 has not invoked
   tryC, so du-opacity refuses, whatever the outcomes. *)
let test_separating_committed () =
  let h = of_text "W1(X,1)->ok R2(X)->1 C1->C C2->C" in
  check_unsat "committed pair: not du-opaque" (du h);
  check_sat "committed pair: last-use-opaque" (lu h);
  check_lu_certified "committed pair certificate" h (lu h)

let test_separating_aborted () =
  let h = of_text "W1(X,1)->ok R2(X)->1 C1->A C2->A" in
  check_unsat "aborted pair: not du-opaque" (du h);
  check_sat "aborted pair: last-use-opaque" (lu h);
  check_lu_certified "aborted pair certificate" h (lu h)

(* The cascading abort gone wrong: the writer aborts but its reader commits
   anyway, keeping a value that was never committed.  Committed readers get
   no closed-writer leniency — neither criterion accepts. *)
let test_cascading_abort_neither () =
  let h = of_text "W1(X,1)->ok R2(X)->1 C1->A C2->C" in
  check_unsat "committed dirty reader: not du-opaque" (du h);
  check_unsat "committed dirty reader: not last-use-opaque" (lu h)

(* The cascade done right: the reader never sees the aborted value at all. *)
let test_clean_abort_both () =
  let h = of_text "W1(X,1)->ok C1->A R2(X)->0 C2->A" in
  check_sat "clean abort: du-opaque" (du h);
  check_sat "clean abort: last-use-opaque" (lu h)

(* Reciprocal release visibility: T1 released Y and T2 released X, then
   each read the other's value.  Whatever the order, someone precedes its
   own supplier — no serialization, under either criterion.  This is the
   cycle an unrestricted early-release STM actually produced (seed 2 of
   the separation sweep below) before the single-releaser token ruled it
   out; it must stay refused. *)
let test_reciprocal_release_refused () =
  let h = of_text "W1(Y,1)->ok W2(X,2)->ok R1(X)->2 R2(Y)->1 C1->A C2->A" in
  check_unsat "reciprocal release: not du-opaque" (du h);
  check_unsat "reciprocal release: not last-use-opaque" (lu h)

(* A non-closing write gives no leniency: T1 writes X twice, the reader
   snatches the FIRST value — that write was not T1's last to X, so even
   last-use opacity refuses. *)
let test_non_closing_write_refused () =
  let h = of_text "W1(X,1)->ok R2(X)->1 W1(X,2)->ok C1->C C2->C" in
  check_unsat "intermediate value: not du-opaque" (du h);
  check_unsat "intermediate value: not last-use-opaque" (lu h)

(* --- Decoration ---------------------------------------------------------- *)

let test_decoration () =
  let h = of_text "W1(X,1)->ok W1(X,2)->ok W1(Y,3)->ok C1->C R2(X)->2 C2->C" in
  match Last_use_opacity.decoration h with
  | [ (t1, closes1); (t2, closes2) ] ->
      Alcotest.(check int) "T1" 1 t1;
      Alcotest.(check int) "T2" 2 t2;
      (* X's closing write is the second (response index 3), not the
         first; Y closes at index 5. *)
      Alcotest.(check (list (pair int int)))
        "T1 closes X at its last write, Y after"
        [ (0, 3); (1, 5) ]
        (List.sort compare closes1);
      Alcotest.(check (list (pair int int))) "T2 closes nothing" [] closes2
  | d -> Alcotest.failf "expected two decorated transactions, got %d" (List.length d)

(* --- Incremental = batch per prefix -------------------------------------- *)

(* Last-use opacity is not prefix-closed; check_inc must judge every prefix
   standalone, matching check on that prefix — including a Sat verdict at a
   boundary after an Unsat one. *)
let test_incremental_matches_batch () =
  List.iter
    (fun text ->
      let h = of_text text in
      let ctx = Last_use_opacity.incremental () in
      List.iter
        (fun i ->
          let p = History.prefix h i in
          let inc, _ = Last_use_opacity.check_inc ctx p in
          let batch = Last_use_opacity.check p in
          Alcotest.(check bool)
            (Fmt.str "prefix %d of %s agrees" i text)
            (Last_use_opacity.is_sat batch)
            (Last_use_opacity.is_sat inc))
        (Oracle.boundaries h))
    [
      "W1(X,1)->ok R2(X)->1 C1->C C2->C";
      "W1(X,1)->ok R2(X)->1 C1->A C2->C";
      "W1(X,1)->ok R2(X)->1 C1->A C2->A";
      "W1(X,1)->ok W1(X,2)->ok C1->C R2(X)->2 C2->C";
    ]

(* --- The two STMs -------------------------------------------------------- *)

let contended =
  {
    Stm.Workload.default with
    n_threads = 3;
    txns_per_thread = 3;
    ops_per_txn = 3;
    n_vars = 2;
    read_ratio = 0.5;
  }

(* Early release must populate the separation class — some recorded history
   du-refused but last-use-accepted — and never the forbidden one. *)
let test_early_release_separates () =
  let separated = ref 0 in
  for seed = 1 to 6 do
    let h =
      (Sim.Runner.run ~stm:"early-release" ~params:contended ~seed ())
        .Sim.Runner.history
    in
    match (du h, lu h) with
    | Verdict.Unsat _, Verdict.Sat _ -> incr separated
    | Verdict.Sat _, Verdict.Unsat _ ->
        Alcotest.failf "containment violated at seed %d: %a" seed
          History.pp_inline h
    | Verdict.Unsat _, Verdict.Unsat _ ->
        Alcotest.failf
          "early release produced a last-use violation (seed %d): %a" seed
          History.pp_inline h
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Fmt.str "some seed separates the criteria (%d/6 did)" !separated)
    true (!separated > 0)

(* Early release publishes through the sequence lock, so the happens-before
   analyzer must NOT flag its uncommitted-value reads as dirty: all the
   transitions are synchronised. *)
let test_early_release_race_free () =
  for seed = 1 to 4 do
    let r =
      Sim.Runner.run ~trace:true ~stm:"early-release" ~params:contended ~seed
        ()
    in
    match r.Sim.Runner.trace with
    | None -> Alcotest.fail "trace requested"
    | Some t ->
        Alcotest.(check bool)
          (Fmt.str "seed %d race-free" seed)
          false
          (Analysis.Race.racy (Analysis.Race.analyze t))
  done

(* Partial abort repairs instead of releasing: still a du-safe algorithm. *)
let test_partial_abort_du_safe () =
  for seed = 1 to 6 do
    let h =
      (Sim.Runner.run ~stm:"partial-abort" ~params:contended ~seed ())
        .Sim.Runner.history
    in
    check_sat (Fmt.str "partial-abort seed %d du-opaque" seed) (du h);
    check_sat (Fmt.str "partial-abort seed %d last-use-opaque" seed) (lu h)
  done

(* --- Containment property ------------------------------------------------ *)

(* du-opaque ⇒ last-use-opaque, over every soak source.  Optional
   closed-writer visibility makes every du witness verbatim a last-use
   witness, so a single counterexample convicts a checker core. *)
let prop_containment =
  let sources = Oracle.default_sources in
  qtest ~count:1000 "du-opaque => last-use-opaque (all soak sources)"
    (QCheck2.Gen.map
       (fun seed ->
         let i = abs seed mod List.length sources in
         Oracle.produce (List.nth sources i) ~seed:(abs seed mod 100_000))
       QCheck2.Gen.int)
    (fun h ->
      match Du_opacity.check_fast ~max_nodes:500_000 h with
      | Verdict.Sat _ -> (
          match Last_use_opacity.check_fast ~max_nodes:500_000 h with
          | Last_use_opacity.Sat _ -> true
          | Last_use_opacity.Unsat _ -> false
          | Last_use_opacity.Ambiguous _ -> QCheck2.assume_fail ())
      | Verdict.Unsat _ -> true
      | Verdict.Unknown _ -> QCheck2.assume_fail ())

(* --- Conflict-graph counterexample cycles (satellite) --------------------- *)

let test_counterexample_cycle () =
  (* Classic two-transaction cycle: each reads the other's overwritten
     variable. *)
  let h =
    of_text
      "R1(X)->0 R2(Y)->0 W1(Y,1)->ok W2(X,1)->ok C1->C C2->C R3(X)->1 \
       R3(Y)->1 C3->C"
  in
  match Conflict_graph.counterexample_cycle h with
  | None -> Alcotest.fail "expected a counterexample cycle"
  | Some cycle ->
      Alcotest.(check bool)
        (Fmt.str "cycle has >= 2 transactions (got %d)" (List.length cycle))
        true
        (List.length cycle >= 2);
      let dot = Dot.of_history ~cycle h in
      Alcotest.(check bool) "dot marks the cycle in red" true
        (let contains s sub =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         contains dot "red")

let test_no_cycle_on_accepted () =
  let h = of_text "W1(X,1)->ok C1->C R2(X)->1 C2->C" in
  Alcotest.(check bool) "accepted history has no counterexample cycle" true
    (Conflict_graph.counterexample_cycle h = None)

let suite =
  [
    ( "last-use opacity",
      [
        test "separating: committed pair" test_separating_committed;
        test "separating: aborted pair" test_separating_aborted;
        test "cascading abort refused by both" test_cascading_abort_neither;
        test "clean abort accepted by both" test_clean_abort_both;
        test "reciprocal release refused" test_reciprocal_release_refused;
        test "non-closing write refused" test_non_closing_write_refused;
        test "closing-write decoration" test_decoration;
        test "incremental matches batch per prefix"
          test_incremental_matches_batch;
        test "early release separates the criteria"
          test_early_release_separates;
        test "early release is race-free" test_early_release_race_free;
        test "partial abort stays du-safe" test_partial_abort_du_safe;
        prop_containment;
        test "counterexample cycle extraction" test_counterexample_cycle;
        test "no cycle on accepted history" test_no_cycle_on_accepted;
      ] );
  ]
