open Tm_safety
open Helpers

let feed events =
  let m = Monitor.create () in
  let outcome = Monitor.push_all m events in
  (m, outcome)

let test_ok_stream () =
  let m, outcome = feed (History.to_list Figures.fig1) in
  (match outcome with
  | `Ok -> ()
  | `Violation why -> Alcotest.failf "unexpected violation: %s" why
  | `Budget why -> Alcotest.failf "unexpected budget: %s" why);
  Alcotest.(check int) "events seen" (History.length Figures.fig1)
    (Monitor.events_seen m);
  Alcotest.(check bool) "has certificate" true
    (Monitor.certificate m <> None);
  Alcotest.(check (option int)) "no violation" None (Monitor.violation_index m)

let test_violation_detected_at_first_bad_prefix () =
  (* fig3: the prefix of length 4 (read_2(X) -> 1 from the non-committing
     T1) is the first non-du-opaque prefix. *)
  let events = History.to_list Figures.fig3 in
  let m = Monitor.create () in
  let outcomes = List.map (Monitor.push m) events in
  let first_violation =
    List.mapi (fun i o -> (i, o)) outcomes
    |> List.find_map (fun (i, o) ->
           match o with `Violation _ -> Some i | `Ok | `Budget _ -> None)
  in
  Alcotest.(check (option int)) "violation at event index 3 (prefix 4)"
    (Some 3) first_violation;
  Alcotest.(check (option int)) "violation index" (Some 4)
    (Monitor.violation_index m)

let test_sticky () =
  let events = History.to_list Figures.fig3 in
  let m = Monitor.create () in
  let _ = Monitor.push_all m events in
  (* Still violated, and pushing more keeps reporting it. *)
  (match Monitor.push m (Event.Inv (9, Event.Read 0)) with
  | `Violation _ -> ()
  | `Ok | `Budget _ -> Alcotest.fail "violation must be sticky");
  Alcotest.(check (option int)) "index unchanged" (Some 4)
    (Monitor.violation_index m)

let test_ill_formed_stream () =
  let m = Monitor.create () in
  match Monitor.push m (Event.Res (1, Event.Read_ok 0)) with
  | `Violation _ -> ()
  | `Ok | `Budget _ -> Alcotest.fail "ill-formed event must be a violation"

let test_matches_offline () =
  (* The monitor's final verdict must agree with the offline checker on
     every prefix family we care about. *)
  let agree name h =
    let _, outcome = feed (History.to_list h) in
    let offline = Verdict.is_sat (Du_opacity.check h) in
    match outcome, offline with
    | `Ok, true -> ()
    | `Violation _, false -> ()
    | `Ok, false -> Alcotest.failf "%s: monitor Ok, offline Unsat" name
    | `Violation why, true ->
        Alcotest.failf "%s: monitor violation (%s), offline Sat" name why
    | `Budget why, _ -> Alcotest.failf "%s: budget: %s" name why
  in
  List.iter
    (fun (e : Figures.expectation) -> agree e.Figures.name e.Figures.history)
    Figures.catalog

let test_budget () =
  (* The revalidation fast path absorbs everything it can and the graph
     backend decides anything with forced edges only, so the budget needs
     a response that reaches the backtracking search: a duplicate written
     value (two live writers of [X=1]) makes the graph decline as
     Ambiguous, and the read from a commit-pending writer defeats
     revalidation — the 1-node search budget then trips. *)
  let h = Dsl.(history [ w 1 x 1; c_inv 1; w 2 x 1; r 3 x 1 ]) in
  let m = Monitor.create ~max_nodes:1 () in
  match Monitor.push_all m (History.to_list h) with
  | `Budget _ -> ()
  | `Ok -> Alcotest.fail "expected budget exhaustion"
  | `Violation why -> Alcotest.failf "budget must not report violation: %s" why

let test_commit_pending_stream () =
  (* A stream that ends with a permanently pending tryC — a stalled commit
     or crashed thread — must be accepted as-is: Ok verdict, certificate
     intact, and the pending transaction tracked without corrupting state. *)
  let events = History.to_list Dsl.(history [ w 1 x 1; c_inv 1 ]) in
  let m, outcome = feed events in
  (match outcome with
  | `Ok -> ()
  | `Violation why -> Alcotest.failf "unexpected violation: %s" why
  | `Budget why -> Alcotest.failf "unexpected budget: %s" why);
  Alcotest.(check bool) "certificate survives" true
    (Monitor.certificate m <> None);
  Alcotest.(check int) "one transaction pending" 1 (Monitor.pending_txns m);
  (* The stream lives on: later transactions push fine around the zombie. *)
  (match
     Monitor.push_all m
       (History.to_list Dsl.(history [ r 2 y 0; c 2 ]) )
   with
  | `Ok -> ()
  | `Violation why -> Alcotest.failf "push after zombie: %s" why
  | `Budget why -> Alcotest.failf "budget after zombie: %s" why);
  Alcotest.(check int) "zombie still pending" 1 (Monitor.pending_txns m)

let test_incremental_efficiency () =
  (* With certificate reuse, a long du-opaque stream should cost roughly a
     constant number of nodes per response: each search succeeds straight
     down the hinted order.  Generous bound to stay robust. *)
  let h = Figures.fig2 ~readers:12 in
  let m = Monitor.create () in
  (match Monitor.push_all m (History.to_list h) with
  | `Ok -> ()
  | `Violation why -> Alcotest.failf "violation: %s" why
  | `Budget why -> Alcotest.failf "budget: %s" why);
  let searches = Monitor.searches_run m in
  let nodes = Monitor.nodes_total m in
  let txns = List.length (History.txns h) in
  Alcotest.(check bool)
    (Fmt.str "nodes per search bounded (%d nodes / %d searches, %d txns)"
       nodes searches txns)
    true
    (nodes <= searches * (txns + 2))

let test_long_stream_fastpath () =
  (* On a recorded TL2 stream of >= 2000 events the certificate-revalidation
     fast path must absorb at least 90% of response events, keeping total
     search work and wall time bounded (the pre-fast-path monitor ran one
     full search per response — Θ(events) searches, unbounded here). *)
  let params =
    {
      Stm.Workload.default with
      n_threads = 3;
      txns_per_thread = 90;
      ops_per_txn = 3;
      n_vars = 6;
    }
  in
  let h = (Sim.Runner.run ~stm:"tl2" ~params ~seed:42 ()).Sim.Runner.history in
  let events = History.to_list h in
  let n = List.length events in
  Alcotest.(check bool)
    (Fmt.str "stream long enough (%d events)" n)
    true (n >= 2000);
  let t0 = Stm.Clock.now () in
  let m = Monitor.create () in
  (match Monitor.push_all m events with
  | `Ok -> ()
  | `Violation why -> Alcotest.failf "violation: %s" why
  | `Budget why -> Alcotest.failf "budget: %s" why);
  let elapsed = Stm.Clock.now () -. t0 in
  let responses = Monitor.responses_seen m in
  let hits = Monitor.fastpath_hits m in
  let rate = float_of_int hits /. float_of_int (max 1 responses) in
  Alcotest.(check bool)
    (Fmt.str "fast-path hit rate >= 0.9 (%d/%d = %.3f)" hits responses rate)
    true (rate >= 0.9);
  Alcotest.(check bool)
    (Fmt.str "nodes bounded (%d nodes over %d events)" (Monitor.nodes_total m)
       n)
    true
    (Monitor.nodes_total m <= 50 * n);
  Alcotest.(check bool)
    (Fmt.str "wall time bounded (%.3fs)" elapsed)
    true (elapsed < 10.)

(* --- serializable checkpoints (persist / of_persisted) ------------------- *)

(* The durable-session contract: persisting a monitor mid-stream and
   resuming from the capsule is invisible — the resumed monitor reaches
   the same verdict, at the same index, with the same counters (so even
   fast-path hit rates are checkpoint-transparent), on every stream
   source we have, fault-injected STM recordings included. *)
let test_persist_roundtrip () =
  let sources =
    [ `Gen; `Stm "tl2"; `Stm "norec"; `Faults "tl2"; `Faults "mvcc" ]
  in
  List.iter
    (fun source ->
      List.iter
        (fun seed ->
          let name =
            Fmt.str "%s seed %d" (Oracle.source_tag source) seed
          in
          let events = History.to_list (Oracle.produce source ~seed) in
          let n = List.length events in
          let cut = n / 2 in
          let prefix = List.filteri (fun i _ -> i < cut) events in
          let rest = List.filteri (fun i _ -> i >= cut) events in
          let straight = Monitor.create () in
          let resumed =
            let m = Monitor.create () in
            ignore (Monitor.push_all m prefix);
            match Monitor.of_persisted (Monitor.persist m) with
            | Ok m' -> m'
            | Error why -> Alcotest.failf "%s: of_persisted: %s" name why
          in
          ignore (Monitor.push_all straight events);
          ignore (Monitor.push_all resumed rest);
          let o = Alcotest.of_pp (fun ppf (o : Monitor.outcome) ->
              match o with
              | `Ok -> Fmt.string ppf "ok"
              | `Violation w -> Fmt.pf ppf "violation(%s)" w
              | `Budget w -> Fmt.pf ppf "budget(%s)" w)
          in
          Alcotest.check o (name ^ ": verdict") (Monitor.status straight)
            (Monitor.status resumed);
          Alcotest.(check (option int))
            (name ^ ": violation index")
            (Monitor.violation_index straight)
            (Monitor.violation_index resumed);
          let s1 = Monitor.snapshot straight
          and s2 = Monitor.snapshot resumed in
          Alcotest.(check int) (name ^ ": events") s1.Monitor.events
            s2.Monitor.events;
          Alcotest.(check int) (name ^ ": responses") s1.Monitor.responses
            s2.Monitor.responses;
          Alcotest.(check int)
            (name ^ ": fast-path hits (hit rate identical)")
            s1.Monitor.fastpath_hits s2.Monitor.fastpath_hits;
          Alcotest.(check int) (name ^ ": searches") s1.Monitor.searches
            s2.Monitor.searches)
        [ 1; 2; 3 ])
    sources

let test_persist_rejects_corrupt () =
  (* A capsule claiming `Ok over a violating history must be refused. *)
  let m = Monitor.create () in
  ignore (Monitor.push_all m (History.to_list Figures.fig1));
  let p = Monitor.persist m in
  let bad =
    { p with Monitor.p_events = History.to_list Figures.fig3 }
  in
  match Monitor.of_persisted bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt capsule (ok-over-violation) accepted"

let suite =
  [
    ( "monitor",
      [
        test "accepts a du-opaque stream" test_ok_stream;
        test "detects first bad prefix" test_violation_detected_at_first_bad_prefix;
        test "violations are sticky" test_sticky;
        test "rejects ill-formed events" test_ill_formed_stream;
        test "agrees with offline checker" test_matches_offline;
        test "budget surfaces as Budget" test_budget;
        test "accepts a permanently commit-pending stream"
          test_commit_pending_stream;
        test "incremental efficiency" test_incremental_efficiency;
        test "long TL2 stream rides the fast path" test_long_stream_fastpath;
        slow "persist/resume is verdict- and hit-rate-transparent"
          test_persist_roundtrip;
        test "corrupt capsules rejected" test_persist_rejects_corrupt;
      ] );
  ]
