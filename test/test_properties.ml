open Tm_safety
open Helpers

(* The paper's theorems as property campaigns over randomly generated
   histories.  Budgets make pathological instances Unknown rather than
   slow; Unknowns are discarded (QCheck2.assume) so they can never mask a
   counterexample. *)

let budget = Some 300_000

let sat _name v =
  match v with
  | Verdict.Sat _ -> true
  | Verdict.Unsat _ -> false
  | Verdict.Unknown _ -> QCheck2.assume_fail ()

let du h = Du_opacity.check ?max_nodes:budget h
let opaque h = Opacity.check ?max_nodes:budget h
let final_state h = Final_state.check ?max_nodes:budget h

(* Generator flavours *)
let small = { Gen.default with n_txns = 6; n_threads = 3; max_ops = 3 }

let t_complete_params =
  { small with pending_ratio = 0.0 (* every transaction reaches tryC/tryA *) }

let unique_params = { small with unique_writes = true }

let mixed =
  (* A blend of snapshot-valued (mostly correct) and random-valued (mostly
     broken) histories, so properties see both verdicts. *)
  QCheck2.Gen.bind QCheck2.Gen.bool (fun snapshot ->
      arb_history
        ~params:
          (if snapshot then small
           else { small with mode = `Random_values; value_range = 2 })
        ())

(* --- Theorem 10: DU-Opacity ⊆ Opacity ⊆ Final-state opacity --- *)

let prop_du_implies_opaque =
  qtest ~count:300 "du-opaque => opaque" mixed (fun h ->
      (not (sat "du" (du h))) || sat "opaque" (opaque h))

let prop_opaque_implies_fs =
  qtest ~count:300 "opaque => final-state opaque" mixed (fun h ->
      (not (sat "op" (opaque h))) || sat "fs" (final_state h))

(* --- Corollary 2: prefix closure --- *)

let prop_du_prefix_closed =
  qtest ~count:150 "du-opacity is prefix-closed" mixed (fun h ->
      (not (sat "du" (du h)))
      || List.for_all
           (fun i -> sat "prefix" (du (History.prefix h i)))
           (History.response_indices h))

let prop_opacity_prefix_closed =
  qtest ~count:60 "opacity is prefix-closed" mixed (fun h ->
      (not (sat "op" (opaque h)))
      || List.for_all
           (fun i -> sat "prefix" (opaque (History.prefix h i)))
           (History.response_indices h))

(* Extending by a lone invocation cannot lose final-state opacity (this
   justifies checking response-prefixes only in the opacity checker) and
   cannot change the du verdict at all: Sat is preserved by monotonicity,
   and Unsat by prefix-closure.  Final-state opacity CAN flip Unsat -> Sat
   (a lone tryC invocation unlocks a commit decision), so only the
   monotone direction is claimed for it. *)
let prop_invocation_extension =
  qtest ~count:150 "invocation extension: du stable, fs monotone" mixed
    (fun h ->
      let invocation_prefixes =
        List.init (History.length h) (fun i -> i + 1)
        |> List.filter (fun i -> Event.is_inv (History.get h (i - 1)))
      in
      List.for_all
        (fun i ->
          let before = History.prefix h (i - 1) in
          let after = History.prefix h i in
          sat "du before" (du before) = sat "du after" (du after)
          && ((not (sat "fs before" (final_state before)))
             || sat "fs after" (final_state after)))
        invocation_prefixes)

(* --- Inclusion chain on t-complete histories --- *)

let prop_chain_t_complete =
  qtest ~count:300 "du => opaque => fs => strict-ser => ser (t-complete)"
    (QCheck2.Gen.bind QCheck2.Gen.bool (fun snapshot ->
         arb_history
           ~params:
             (if snapshot then t_complete_params
              else
                { t_complete_params with mode = `Random_values; value_range = 2 })
           ()))
    (fun h ->
      QCheck2.assume (History.is_t_complete h);
      let imp a b = (not a) || b in
      let v_du = sat "du" (du h) in
      let v_op = sat "op" (opaque h) in
      let v_fs = sat "fs" (final_state h) in
      let v_ss = sat "ss" (Serializable.check_strict ?max_nodes:budget h) in
      let v_s = sat "s" (Serializable.check ?max_nodes:budget h) in
      imp v_du v_op && imp v_op v_fs && imp v_fs v_ss && imp v_ss v_s)

(* --- Theorem 11: unique writes ⇒ du-opacity = opacity --- *)

let prop_unique_writes_equiv =
  qtest ~count:300 "unique writes: du-opaque <=> opaque"
    (arb_history ~params:unique_params ())
    (fun h ->
      QCheck2.assume (Polygraph.unique_writes h);
      sat "du" (du h) = sat "op" (opaque h))

(* --- Polygraph agrees with the general checker under unique writes --- *)

let prop_polygraph_agrees =
  qtest ~count:300 "polygraph = search under unique writes"
    (arb_history ~params:unique_params ())
    (fun h ->
      match Polygraph.check h with
      | Polygraph.Sat s -> (
          sat "du" (du h)
          &&
          match Serialization.validate ~claim:Serialization.Du_opaque h s with
          | Ok () -> true
          | Error _ -> false)
      | Polygraph.Unsat _ -> not (sat "du" (du h))
      | Polygraph.Not_unique _ -> QCheck2.assume_fail ())

(* --- Conflict-order fast path is sound --- *)

let prop_fastpath_sound =
  qtest ~count:300 "conflict fast path only claims true positives" mixed
    (fun h ->
      match Conflict_opacity.attempt h with
      | Some _ -> sat "du" (du h)
      | None -> true)

let prop_check_fast_agrees =
  qtest ~count:200 "check_fast = check" mixed (fun h ->
      sat "fast" (Du_opacity.check_fast ?max_nodes:budget h)
      = sat "du" (du h))

(* --- GHS'08 (read-commit order) is stronger than du-opacity --- *)

let prop_rco_implies_du =
  qtest ~count:300 "rco-opaque => du-opaque" mixed (fun h ->
      (not (sat "rco" (Rco.check ?max_nodes:budget h))) || sat "du" (du h))

(* --- Certificates always validate --- *)

let prop_certificates_validate =
  qtest ~count:300 "search certificates pass the definitional validator"
    mixed (fun h ->
      (match du h with
      | Verdict.Sat s ->
          Serialization.validate ~claim:Serialization.Du_opaque h s = Ok ()
      | Verdict.Unsat _ -> true
      | Verdict.Unknown _ -> QCheck2.assume_fail ())
      &&
      match final_state h with
      | Verdict.Sat s ->
          Serialization.validate ~claim:Serialization.Final_state h s = Ok ()
      | Verdict.Unsat _ -> true
      | Verdict.Unknown _ -> QCheck2.assume_fail ())

(* --- Lemma 1: certificates project to prefixes ---

   Only claimed under unique writes: with duplicate writes the paper's
   construction (and indeed the lemma's statement) fails — see
   Tm_figures.Findings.lemma1_gap and the "findings" test suite. *)

let prop_lemma1_unique_writes =
  qtest ~count:150 "Lemma 1 projection (unique writes)"
    (arb_history ~params:unique_params ())
    (fun h ->
      match du h with
      | Verdict.Sat s ->
          List.for_all
            (fun i ->
              let si = Lemmas.project_prefix h s i in
              Serialization.validate ~claim:Serialization.Du_opaque
                (History.prefix h i) si
              = Ok ())
            (History.response_indices h)
      | Verdict.Unsat _ -> true
      | Verdict.Unknown _ -> QCheck2.assume_fail ())

(* Corollary 2's *statement*, independent of the broken construction: the
   prefix always has SOME serialization (already prop_du_prefix_closed);
   moreover when the paper's projection does fail, a full re-search still
   succeeds. *)
let prop_lemma1_fallback =
  qtest ~count:150 "Lemma 1 fallback: failed projections re-search fine" mixed
    (fun h ->
      match du h with
      | Verdict.Sat s ->
          List.for_all
            (fun i ->
              let si = Lemmas.project_prefix h s i in
              let p = History.prefix h i in
              match
                Serialization.validate ~claim:Serialization.Du_opaque p si
              with
              | Ok () -> true
              | Error _ -> sat "prefix re-search" (du p))
            (History.response_indices h)
      | Verdict.Unsat _ -> true
      | Verdict.Unknown _ -> QCheck2.assume_fail ())

(* --- Lemma 4: live-set normalisation --- *)

let prop_lemma4 =
  qtest ~count:150 "Lemma 4: live-set-respecting serialization" mixed
    (fun h ->
      match du h with
      | Verdict.Sat s ->
          let s' = Lemmas.normalize_live_sets h s in
          Lemmas.respects_live_sets h s'
          && Serialization.validate ~claim:Serialization.Du_opaque h s' = Ok ()
      | Verdict.Unsat _ -> true
      | Verdict.Unknown _ -> QCheck2.assume_fail ())

(* --- Completions --- *)

let prop_completions =
  qtest ~count:150 "enumerated completions are completions" mixed (fun h ->
      let completions = Completion.enumerate ~limit:8 h in
      List.for_all
        (fun c ->
          History.is_t_complete c && Completion.is_completion c ~of_:h)
        completions)

(* --- Monitor agrees with the offline checker --- *)

let prop_monitor_offline =
  qtest ~count:100 "monitor = offline prefix scan" mixed (fun h ->
      let m = Monitor.create () in
      let outcome = Monitor.push_all m (History.to_list h) in
      let offline_first_bad =
        let lens = History.response_indices h in
        List.find_opt
          (fun i -> not (sat "p" (du (History.prefix h i))))
          lens
      in
      match outcome, offline_first_bad with
      | `Ok, None -> true
      | `Violation _, Some i -> Monitor.violation_index m = Some i
      | `Ok, Some _ | `Violation _, None -> false
      | `Budget _, _ -> QCheck2.assume_fail ())

(* The same agreement, hammered harder: 1000 iterations over a blend of
   random histories and fault-injected simulator runs (crashes, stalls,
   spurious aborts, omission), so the revalidation fast path is exercised
   against genuinely incomplete streams — commit-pending zombies and
   invocations pending forever — not just generator output. *)

let prop_monitor_equiv_offline =
  let fault_params =
    {
      Stm.Workload.default with
      n_threads = 3;
      txns_per_thread = 3;
      ops_per_txn = 2;
      n_vars = 3;
    }
  in
  let faulted =
    QCheck2.Gen.map
      (fun seed ->
        let spec =
          Sim.Faults.sample
            ~n_threads:fault_params.Stm.Workload.n_threads
            ~horizon:(Sim.Faults.horizon fault_params)
            ~seed ()
        in
        (Sim.Faults.run_one ~check:false ~stm:"tl2" ~params:fault_params
           ~spec ~seed ())
          .Sim.Faults.history)
      QCheck2.Gen.(0 -- 1_000_000)
  in
  qtest ~count:1000 "monitor = offline (random + fault-injected, 1000x)"
    (QCheck2.Gen.bind QCheck2.Gen.bool (fun use_faults ->
         if use_faults then faulted else mixed))
    (fun h ->
      let m = Monitor.create ?max_nodes:budget () in
      let outcome = Monitor.push_all m (History.to_list h) in
      let offline_first_bad =
        List.find_opt
          (fun i -> not (sat "p" (du (History.prefix h i))))
          (History.response_indices h)
      in
      match (outcome, offline_first_bad) with
      | `Ok, None -> true
      | `Violation _, Some i -> Monitor.violation_index m = Some i
      | `Ok, Some _ | `Violation _, None -> false
      | `Budget _, _ -> QCheck2.assume_fail ())

(* --- Structural properties of the generator and the text format --- *)

let prop_roundtrip =
  qtest ~count:1000 "text roundtrip is exact (1000x)" mixed (fun h ->
      match Parse.of_string (Parse.to_text h) with
      | Ok h' -> History.to_list h = History.to_list h'
      | Error _ -> false)

let prop_unique_writes_generator =
  qtest ~count:300 "generator honours unique_writes"
    (arb_history ~params:unique_params ())
    Polygraph.unique_writes

let prop_prefix_structure =
  qtest ~count:200 "prefixes compose" mixed (fun h ->
      let n = History.length h in
      let i = n / 2 and j = n / 3 in
      History.to_list (History.prefix (History.prefix h i) j)
      = History.to_list (History.prefix h j))

let prop_single_threaded_du_opaque =
  (* With one thread the snapshot-valued generator produces t-sequential
     read-committed executions: always du-opaque.  (With concurrency it is
     read-committed, which famously admits write skew — NOT serializable in
     general, so no such claim is made there.) *)
  qtest ~count:200 "single-threaded snapshot histories are du-opaque"
    (arb_history ~params:{ small with n_threads = 1 } ())
    (fun h -> sat "du" (du h))

let suite =
  [
    ( "properties",
      [
        prop_du_implies_opaque;
        prop_opaque_implies_fs;
        prop_du_prefix_closed;
        prop_opacity_prefix_closed;
        prop_invocation_extension;
        prop_chain_t_complete;
        prop_unique_writes_equiv;
        prop_polygraph_agrees;
        prop_fastpath_sound;
        prop_check_fast_agrees;
        prop_rco_implies_du;
        prop_certificates_validate;
        prop_lemma1_unique_writes;
        prop_lemma1_fallback;
        prop_lemma4;
        prop_completions;
        prop_monitor_offline;
        prop_monitor_equiv_offline;
        prop_roundtrip;
        prop_unique_writes_generator;
        prop_prefix_structure;
        prop_single_threaded_du_opaque;
      ] );
  ]
