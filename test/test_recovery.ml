(* Fault tolerance of the [tm serve] service: durable session journals,
   crash recovery by snapshot-load + journal-replay, client resume with
   idempotent re-send, the overload degradation ladder, heartbeats and
   session expiry — and, at the end, a small network-chaos campaign
   through the fault-injecting proxy.

   The governing invariant everywhere: a recovered (or resumed, or
   degraded) session must reach exactly the verdict an uninterrupted
   monitor reaches on the same stream — or fail with a clean, documented
   error.  Never a wrong verdict, never a hang. *)

open Tm_safety
open Helpers
module Protocol = Service.Protocol
module Wire = Service.Wire
module Server = Service.Server
module Client = Service.Client
module Journal = Service.Journal

let status = Alcotest.testable Protocol.pp_status ( = )

let guard fd = Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.

let offline_status h =
  let m = Monitor.create () in
  match Monitor.push_all m (History.to_list h) with
  | `Ok -> Protocol.S_ok
  | `Violation why -> Protocol.S_violation why
  | `Budget why -> Protocol.S_budget why

(* --- scratch directories -------------------------------------------------- *)

let dir_counter = ref 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (try Sys.readdir path with Sys_error _ -> [||]);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let with_dir f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "tm-recovery-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let with_durable_server ?shards ?session_timeout ?hwm ?throttle_sample
    ?throttle_shed f =
  with_dir (fun dir ->
      let addr = `Unix (Filename.concat dir "sock") in
      let journal_dir = Filename.concat dir "journal" in
      let cfg =
        Server.config ~domains:2 ?shards ~journal_dir ?session_timeout ?hwm
          ?throttle_sample ?throttle_shed addr
      in
      let srv = ref (Server.start cfg) in
      Fun.protect
        ~finally:(fun () -> Server.stop !srv)
        (fun () -> f srv cfg addr))

let connect addr =
  let c = Client.connect addr in
  guard (Client.fd c);
  c

let split_at k l =
  (List.filteri (fun i _ -> i < k) l, List.filteri (fun i _ -> i >= k) l)

(* --- the journal, in isolation -------------------------------------------- *)

let test_journal_roundtrip () =
  with_dir (fun dir ->
      let events = History.to_list Figures.fig1 in
      let n = List.length events in
      let a, b = split_at (n / 2) events in
      let m = Monitor.create () in
      let j = Journal.create ~dir ~session:7 () in
      ignore (Monitor.push_all m a);
      ignore (Journal.append j a);
      (* checkpoint mid-stream, then keep appending past the snapshot *)
      Journal.snapshot j (Monitor.persist m);
      ignore (Monitor.push_all m b);
      ignore (Journal.append j b);
      Alcotest.(check int) "applied counts everything" n (Journal.applied j);
      Alcotest.(check int) "post-snapshot tail" (List.length b)
        (Journal.since_snapshot j);
      Journal.close j;
      Alcotest.(check bool) "exists on disk" true
        (Journal.exists ~dir ~session:7);
      Alcotest.(check (list int)) "listed on disk" [ 7 ]
        (Journal.sessions_on_disk ~dir);
      match Journal.recover ~dir ~session:7 () with
      | Error why -> Alcotest.failf "recover: %s" why
      | Ok (m', applied, j') ->
          Alcotest.(check int) "recovered applied" n applied;
          Alcotest.(check int) "monitor replayed fully" n
            (Monitor.events_seen m');
          let s = Monitor.snapshot m and s' = Monitor.snapshot m' in
          Alcotest.(check int) "responses survive the capsule"
            s.Monitor.responses s'.Monitor.responses;
          Alcotest.(check int) "fast-path hits survive the capsule"
            s.Monitor.fastpath_hits s'.Monitor.fastpath_hits;
          Journal.close j')

let test_journal_torn_tail () =
  with_dir (fun dir ->
      let events = History.to_list Figures.fig1 in
      let n = List.length events in
      let j = Journal.create ~dir ~session:1 () in
      ignore (Journal.append j events);
      Journal.close j;
      (* Tear the last record mid-byte, as a crash during write(2) would. *)
      let path = Filename.concat dir "s1.journal" in
      let len = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (len - 3);
      Unix.close fd;
      match Journal.recover ~dir ~session:1 () with
      | Error why -> Alcotest.failf "torn-tail recover: %s" why
      | Ok (m', applied, j') ->
          Alcotest.(check bool)
            (Fmt.str "torn tail dropped (%d < %d)" applied n)
            true (applied < n);
          Alcotest.(check int) "monitor matches the surviving prefix" applied
            (Monitor.events_seen m');
          (* the journal is usable again: the torn tail was truncated away *)
          ignore (Journal.append j' [ Event.Inv (99, Event.Read 0) ]);
          Alcotest.(check int) "append after truncation" (applied + 1)
            (Journal.applied j');
          Journal.close j')

(* --- crash recovery and resume -------------------------------------------- *)

(* Retry a resume briefly: the dead connection's orphaning travels through
   the old reader's cleanup, which can lag the new connection. *)
let resume_eventually c session ~from =
  let rec go n =
    match Client.resume c session ~from with
    | Ok r -> r
    | Error (Protocol.Duplicate_session, _) when n > 0 ->
        Thread.delay 0.02;
        go (n - 1)
    | Error (code, msg) ->
        Alcotest.failf "resume: %a: %s" Protocol.pp_error_code code msg
  in
  go 250

let test_kill_and_recover_verdict_parity () =
  (* The lockstep test: crash the server mid-stream, restart it on the
     same journal directory, resume, finish the stream — the verdict must
     be byte-for-byte the uninterrupted one, for clean and violating
     histories alike. *)
  List.iter
    (fun (h : Figures.expectation) ->
      with_durable_server (fun srv cfg addr ->
          let events = History.to_list h.history in
          let n = List.length events in
          let half, rest = split_at (max 1 (n / 2)) events in
          let c = connect addr in
          Client.open_session c 1;
          Client.send_events_at c 1 ~from:0 half;
          (* the checkpoint round-trip guarantees everything above is
             journalled before the crash *)
          ignore (Client.checkpoint c 1);
          Server.crash !srv;
          srv := Server.start cfg;
          let c2 = connect addr in
          let applied, _mode, _status = resume_eventually c2 1 ~from:0 in
          Alcotest.(check int)
            (Fmt.str "%s: journalled prefix survived the crash" h.name)
            (List.length half) applied;
          Client.send_events_at c2 1 ~from:applied rest;
          let v = Client.close_session c2 1 in
          Alcotest.check status
            (Fmt.str "%s: recovered verdict equals uninterrupted" h.name)
            (offline_status h.history) v.Protocol.status;
          Alcotest.(check int)
            (Fmt.str "%s: verdict covers the whole stream" h.name)
            n v.Protocol.applied;
          Client.close c2;
          (try Client.close c with Unix.Unix_error _ -> ())))
    Figures.catalog

let test_sharded_crash_shard_count_change () =
  (* The two monitors share the capsule format, so a server restarted with
     a different --shards must still recover every durable session.  Crash
     a 4-shard server mid-stream and restart it sequential (and vice
     versa): resumed verdicts stay byte-for-byte the uninterrupted ones. *)
  List.iter
    (fun (shards_before, shards_after) ->
      List.iter
        (fun (h : Figures.expectation) ->
          with_durable_server ~shards:shards_before (fun srv cfg addr ->
              let events = History.to_list h.history in
              let n = List.length events in
              let half, rest = split_at (max 1 (n / 2)) events in
              let c = connect addr in
              Client.open_session c 1;
              Client.send_events_at c 1 ~from:0 half;
              ignore (Client.checkpoint c 1);
              Server.crash !srv;
              srv := Server.start { cfg with Server.shards = shards_after };
              let c2 = connect addr in
              let applied, _mode, _status = resume_eventually c2 1 ~from:0 in
              Alcotest.(check int)
                (Fmt.str "%s: journalled prefix survived (%d->%d shards)"
                   h.name shards_before shards_after)
                (List.length half) applied;
              Client.send_events_at c2 1 ~from:applied rest;
              let v = Client.close_session c2 1 in
              Alcotest.check status
                (Fmt.str "%s: verdict across shard-count change (%d->%d)"
                   h.name shards_before shards_after)
                (offline_status h.history) v.Protocol.status;
              Client.close c2;
              (try Client.close c with Unix.Unix_error _ -> ())))
        Figures.catalog)
    [ (4, 1); (1, 4) ]

let test_verdict_survives_budget_change () =
  (* The sticky-verdict record, end to end: Finding 3's counterexample
     trips the monitor via the backtracking search (never the fast path or
     the graph), so its [`Violation] is exactly the verdict a replay under
     a starved node budget cannot re-derive.  Crash after the flip but
     before any checkpoint — the journal holds only raw events plus the
     verdict record — then restart the server with [max_nodes = 1].  On
     code that merely replays events, recovery degrades the pre-crash
     violation to [`Budget]; the journalled verdict must keep it honest. *)
  with_dir (fun dir ->
      let addr = `Unix (Filename.concat dir "sock") in
      let journal_dir = Filename.concat dir "journal" in
      let h, vidx = Tm_figures.Findings.corollary2_gap in
      let events = History.to_list h in
      let n = List.length events in
      let expected = offline_status h in
      (match expected with
      | Protocol.S_violation _ -> ()
      | s ->
          Alcotest.failf "fixture must violate, got %a" Protocol.pp_status s);
      let srv = ref (Server.start (Server.config ~domains:2 ~journal_dir addr)) in
      Fun.protect
        ~finally:(fun () -> Server.stop !srv)
        (fun () ->
          let c = connect addr in
          Client.open_session c 1;
          Client.send_events_at c 1 ~from:0 events;
          (* Wait for the worker to journal and push the batch — via stats,
             NOT a checkpoint: a checkpoint snapshots the monitor capsule
             (sticky status included), which would mask the bug.  The
             monitor stops counting at the violating prefix, so wait on
             that index rather than the stream length. *)
          let seen () =
            List.fold_left
              (fun acc d -> acc + d.Protocol.events)
              0 (Client.stats c)
          in
          let rec wait tries =
            if seen () < vidx && tries > 0 then begin
              Thread.delay 0.01;
              wait (tries - 1)
            end
          in
          wait 500;
          Alcotest.(check bool) "monitor reached the violating prefix" true
            (seen () >= vidx);
          Server.crash !srv;
          srv :=
            Server.start
              (Server.config ~domains:2 ~max_nodes:1 ~journal_dir addr);
          let c2 = connect addr in
          let applied, _mode, st = resume_eventually c2 1 ~from:0 in
          Alcotest.(check int) "journalled stream survived the crash" n
            applied;
          Alcotest.check status "resumed status is the pre-crash violation"
            expected st;
          let v = Client.close_session c2 1 in
          Alcotest.check status "recovered verdict is the pre-crash violation"
            expected v.Protocol.status;
          Client.close c2;
          (try Client.close c with Unix.Unix_error _ -> ())))

let test_orphan_reattach () =
  with_durable_server (fun _srv _cfg addr ->
      let h = Figures.fig1 in
      let events = History.to_list h in
      let n = List.length events in
      let half, rest = split_at (n / 2) events in
      let c = connect addr in
      Client.open_session c 1;
      Client.send_events_at c 1 ~from:0 half;
      ignore (Client.checkpoint c 1);
      (* die without Goodbye: the session must become orphaned-resumable *)
      Unix.close (Client.fd c);
      let c2 = connect addr in
      let applied, mode, _ = resume_eventually c2 1 ~from:0 in
      Alcotest.(check int) "orphan kept its applied index" (n / 2) applied;
      Alcotest.(check bool) "orphan still fully checked" true
        (mode = Protocol.M_full);
      Client.send_events_at c2 1 ~from:applied rest;
      let v = Client.close_session c2 1 in
      Alcotest.check status "reattached verdict" (offline_status h)
        v.Protocol.status;
      Client.close c2)

let test_resume_is_idempotent_dedup () =
  with_durable_server (fun _srv _cfg addr ->
      let h = Figures.fig1 in
      let events = History.to_list h in
      let n = List.length events in
      let c = connect addr in
      Client.open_session c 1;
      (* send everything twice from the same index: the second pass must
         be entirely deduplicated against the applied index *)
      Client.send_events_at c 1 ~from:0 events;
      Client.send_events_at c 1 ~from:0 events;
      (* and a gap must be refused (zero-delay throttle), not applied *)
      Client.send_events_at c 1 ~from:(n + 100)
        [ Event.Inv (50, Event.Read 0) ];
      let v = Client.close_session c 1 in
      Alcotest.(check int) "events applied exactly once" n v.Protocol.applied;
      Alcotest.check status "verdict unchanged by duplicates"
        (offline_status h) v.Protocol.status;
      Alcotest.(check bool) "the gap frame was throttled" true
        (Client.throttled c >= 1);
      Client.close c)

let test_session_expiry () =
  with_durable_server ~session_timeout:0.2 (fun _srv _cfg addr ->
      let c = connect addr in
      Client.open_session c 1;
      Client.send_events_at c 1 ~from:0 (History.to_list Figures.fig1);
      ignore (Client.checkpoint c 1);
      Unix.close (Client.fd c);
      (* sweeper tick is session_timeout / 4; give it several periods *)
      Thread.delay 1.0;
      let c2 = connect addr in
      (match Client.resume c2 1 ~from:0 with
      | Ok _ -> Alcotest.fail "expired session must not resume"
      | Error (Protocol.Unknown_session, _) -> ()
      | Error (code, msg) ->
          Alcotest.failf "expected unknown-session, got %a: %s"
            Protocol.pp_error_code code msg);
      (* the identifier is free again *)
      Client.open_session c2 1;
      let v = Client.close_session c2 1 in
      Alcotest.check status "fresh session on the expired id" Protocol.S_ok
        v.Protocol.status;
      Client.close c2)

(* --- overload: the degradation ladder ------------------------------------- *)

let test_throttle_then_shed () =
  (* hwm = 0 makes every admission decision a throttle, so the ladder is
     deterministic: full -> sampling (after 2) -> shed (after 4). *)
  with_durable_server ~hwm:0 ~throttle_sample:2 ~throttle_shed:4
    (fun _srv _cfg addr ->
      let c = connect addr in
      Client.open_session c 1;
      let burst = [ Event.Inv (1, Event.Read 0) ] in
      for i = 0 to 5 do
        Client.send_events_at c 1 ~from:i burst
      done;
      let v = Client.close_session c 1 in
      Alcotest.(check bool) "session was shed" true
        (v.Protocol.mode = Protocol.M_shed);
      Alcotest.(check int) "nothing was silently applied" 0 v.Protocol.applied;
      Alcotest.(check bool) "client saw the shed notice" true
        (Client.shed c <> None);
      Alcotest.(check bool) "client counted throttles" true
        (Client.throttled c >= 2);
      Client.close c)

let test_shed_is_degraded_not_wrong () =
  (* submit_durable against a shedding server must report the shed reason
     and a verdict whose [applied] honestly bounds what it covers. *)
  with_durable_server ~hwm:0 ~throttle_sample:2 ~throttle_shed:4
    (fun _srv _cfg addr ->
      let events = History.to_list Figures.fig1 in
      let r =
        Client.submit_durable ~session:1 ~chunk:4 ~checkpoint_every:1
          ~backoff:{ Client.default_backoff with attempts = 30; base_ms = 1 }
          ~connect:(fun () -> connect addr)
          events
      in
      Alcotest.(check bool) "shed reason surfaced" true
        (r.Client.shed_reason <> None);
      Alcotest.(check bool) "verdict covers only the applied prefix" true
        (r.Client.verdict.Protocol.applied <= List.length events))

(* --- protocol odds and ends ------------------------------------------------ *)

let test_heartbeat_echo () =
  with_durable_server (fun _srv _cfg addr ->
      let c = connect addr in
      Client.ping c;
      Client.ping c;
      let v = Client.submit ~session:1 c Figures.fig1 in
      Alcotest.check status "served after heartbeats"
        (offline_status Figures.fig1) v.Protocol.status;
      Client.close c)

let test_v1_client_still_served () =
  with_durable_server (fun _srv _cfg addr ->
      let c = Client.connect ~version:1 addr in
      guard (Client.fd c);
      Alcotest.(check int) "negotiated down to v1" 1 (Client.version c);
      let v = Client.submit ~session:1 c Figures.fig1 in
      Alcotest.check status "v1 verdict" (offline_status Figures.fig1)
        v.Protocol.status;
      Alcotest.(check bool) "v1 verdicts decode tail-free" true
        (v.Protocol.mode = Protocol.M_full
        && v.Protocol.applied = v.Protocol.events);
      Client.close c)

let test_resume_needs_v2_and_durability () =
  (* On a v2 but non-durable server, Resume is a clean protocol error. *)
  with_dir (fun dir ->
      let addr = `Unix (Filename.concat dir "sock") in
      let srv = Server.start (Server.config ~domains:1 addr) in
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () ->
          let c = connect addr in
          (match Client.resume c 1 ~from:0 with
          | Ok _ -> Alcotest.fail "resume on a non-durable server succeeded"
          | Error ((Protocol.Bad_frame | Protocol.Unknown_session), _) -> ()
          | Error (code, msg) ->
              Alcotest.failf "unexpected %a: %s" Protocol.pp_error_code code
                msg);
          Client.close c))

(* --- network chaos (the full campaign, scaled down) ------------------------ *)

let test_chaos_campaign () =
  let report =
    Service_chaos.run
      (Service_chaos.config ~source:(`Faults "tl2")
         ~seeds:[ 1; 2; 3; 4 ] ~kill_every:2 ~deadline:20. ())
  in
  Alcotest.(check int) "no wrong verdicts" 0 report.Service_chaos.wrong;
  Alcotest.(check int) "no hangs" 0 report.Service_chaos.hangs;
  Alcotest.(check bool) "at least one round recovered" true
    (report.Service_chaos.recovered >= 1)

let suite =
  [
    ( "recovery: journal",
      [
        test "append / snapshot / recover round-trip" test_journal_roundtrip;
        test "torn tail truncated, never fatal" test_journal_torn_tail;
      ] );
    ( "recovery: crash and resume",
      [
        slow "server crash: recovered verdicts equal uninterrupted"
          test_kill_and_recover_verdict_parity;
        slow "sharded crash: recovery across a shard-count change"
          test_sharded_crash_shard_count_change;
        test "kill at violation: verdict survives a budget change"
          test_verdict_survives_budget_change;
        test "orphaned session reattaches" test_orphan_reattach;
        test "duplicated and gapped frames never double-apply"
          test_resume_is_idempotent_dedup;
        test "orphans expire after the session timeout" test_session_expiry;
      ] );
    ( "recovery: overload",
      [
        test "degradation ladder: full -> sampling -> shed"
          test_throttle_then_shed;
        test "a shed submission degrades honestly"
          test_shed_is_degraded_not_wrong;
      ] );
    ( "recovery: protocol",
      [
        test "heartbeats echo" test_heartbeat_echo;
        test "v1 clients served byte-compatibly" test_v1_client_still_served;
        test "resume requires a durable server" test_resume_needs_v2_and_durability;
      ] );
    ( "recovery: network chaos",
      [ slow "4-seed proxy chaos campaign, no wrong verdicts, no hangs"
          test_chaos_campaign ] );
  ]
