(* Regression tests for the plumbing fixed alongside the soak harness:
   the scheduler's runnable queue, the monitor's pending gauge, wire-level
   EOF semantics, and History.equivalent. *)

open Tm_safety
open Helpers

(* --- seeded scheduler golden traces -------------------------------------

   The runnable set moved from an O(n²) list to a random-access structure;
   seeded schedules must stay bit-for-bit identical or every recorded
   experiment in EXPERIMENTS.md silently changes.  These texts were captured
   before the refactor. *)

let golden_tl2_42 =
  "W2(W,83)->ok R2(Y) R3(W) R1(W) ret3:0 R3(Z) ret1:0 R1(Y) ret2:0 \
   R2(X)->0 C2 ret3:0 R3(W) ret1:0 R1(Z) ret3:A ret1:0 C1->C R5(Z) ret2:C \
   R4(W) W6(Y,56)->ok R6(X) ret5:0 W5(W,59)->ok R5(W)->59 C5 ret6:0 \
   R6(X)->0 C6 ret4:A ret5:C R8(W) R7(W)->59 R7(Z) ret8:59 R8(Z) ret7:0 \
   R7(W) ret6:C W9(X,31)->ok R9(X)->31 W9(W,72)->ok C9 ret7:59 C7->C \
   ret8:0 R8(X) R10(Z)->0 R10(Y) ret8:A ret10:56 R10(W) R11(W) ret10:A \
   ret11:A R13(W) R12(Z) ret9:C R14(Z) ret13:72 R13(Z)->0 R13(X) ret12:0 \
   R12(Y) ret14:0 R14(X) ret12:56 R12(W)->72 C12->C ret14:31 W14(X,21)->ok \
   C14 R15(Y) ret13:A R16(W) ret15:56 R15(W)->72 R15(Y) ret16:72 R16(Z) \
   ret14:C ret15:56 C15->C R17(Z) ret16:0 R16(X)->21 C16->C R18(X)->21 \
   R18(Z) ret17:0 R17(Y) ret18:0 R18(W) ret17:56 W17(X,57)->ok C17 \
   ret18:72 C18->C ret17:C"

let golden_norec_7 =
  "R1(X) W4(X,54)->ok W4(Y,48)->ok C4 R3(Z) ret1:0 R1(X) ret3:0 R3(Z) \
   R2(X)->0 R2(Z) ret1:0 C1->C ret4:C W6(Z,22)->ok W6(Y,81)->ok C6->C \
   R7(Y) W5(X,68)->ok W5(X,19)->ok C5 ret3:A ret5:C R9(Z)->22 W9(X,66)->ok \
   C9 R8(Z) ret2:A R10(X) ret8:22 R8(Z) ret9:C ret8:22 C8->C ret10:66 \
   R10(Z) R11(Z) ret7:81 W7(Z,86)->ok C7 ret10:22 C10->C ret11:22 R11(Z) \
   R12(Y)->81 R12(Z) ret7:C ret11:A R13(Z)->86 R13(Z)->86 C13->C R14(Z) \
   ret12:86 C12->C ret14:86 R14(X) W15(X,89)->ok W15(Z,99)->ok C15 \
   ret14:66 C14->C ret15:C"

let record ~stm ~threads ~txns ~ops ~vars ~seed =
  let params =
    {
      Stm.Workload.default with
      n_threads = threads;
      txns_per_thread = txns;
      ops_per_txn = ops;
      n_vars = vars;
      zipf_theta = 0.0;
    }
  in
  Parse.to_text (Sim.Runner.run ~stm ~params ~seed ()).Sim.Runner.history

let test_golden_tl2 () =
  Alcotest.(check string) "tl2 seed 42" golden_tl2_42
    (record ~stm:"tl2" ~threads:3 ~txns:4 ~ops:3 ~vars:4 ~seed:42)

let test_golden_norec () =
  Alcotest.(check string) "norec seed 7" golden_norec_7
    (record ~stm:"norec" ~threads:4 ~txns:3 ~ops:2 ~vars:3 ~seed:7)

(* --- the monitor's O(1) pending gauge ------------------------------------ *)

let recompute_pending h =
  List.length
    (List.filter (fun t -> not (Txn.is_t_complete t)) (History.infos h))

let prop_pending_gauge seed =
  (* After every event, the gauge equals the count recomputed from the
     transaction table — including histories that end with pending
     operations and live transactions. *)
  let params = { Gen.default with n_txns = 8; pending_ratio = 0.25 } in
  let h = Gen.run_seed params seed in
  let m = Monitor.create ~max_nodes:200_000 () in
  List.for_all
    (fun ev ->
      ignore (Monitor.push m ev);
      Monitor.pending_txns m = recompute_pending (Monitor.history m)
      && (Monitor.snapshot m).Monitor.pending = Monitor.pending_txns m)
    (History.to_list h)

(* --- wire EOF semantics --------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_all fd bytes =
  let n = Bytes.length bytes in
  let rec go pos = if pos < n then go (pos + Unix.write fd bytes pos (n - pos)) in
  go 0

let test_eof_at_boundary_is_closed () =
  with_socketpair (fun a b ->
      Unix.close a;
      match Service.Wire.recv b with
      | _ -> Alcotest.fail "expected Closed"
      | exception Service.Wire.Closed -> ())

let test_eof_mid_body_is_desync () =
  with_socketpair (fun a b ->
      (* A header promising 100 bytes, then 10 bytes, then EOF. *)
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 100l;
      write_all a header;
      write_all a (Bytes.make 10 'x');
      Unix.close a;
      match Service.Wire.recv b with
      | _ -> Alcotest.fail "expected Desync"
      | exception Service.Wire.Desync _ -> ()
      | exception Service.Wire.Closed ->
          Alcotest.fail "mid-frame EOF reported as a clean close")

let test_eof_mid_header_is_desync () =
  with_socketpair (fun a b ->
      write_all a (Bytes.make 2 '\000');
      Unix.close a;
      match Service.Wire.recv b with
      | _ -> Alcotest.fail "expected Desync"
      | exception Service.Wire.Desync _ -> ()
      | exception Service.Wire.Closed ->
          Alcotest.fail "mid-header EOF reported as a clean close")

(* --- History.equivalent --------------------------------------------------- *)

(* The specification, directly: same transactions, identical per-transaction
   event subsequences.  The implementation regrouped this into a single
   pass; they must coincide on arbitrary pairs. *)
let reference_equivalent h h' =
  let txs h = List.sort compare (History.txns h) in
  let per h k =
    List.filter (fun e -> Event.tx_of e = k) (History.to_list h)
  in
  List.equal Int.equal (txs h) (txs h')
  && List.for_all
       (fun k -> List.equal Event.equal (per h k) (per h' k))
       (txs h)

(* A per-transaction-order-preserving reshuffle: equivalent by construction. *)
let reshuffle seed h =
  let st = Random.State.make [| seed; 0x5eed |] in
  let queues = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let k = Event.tx_of e in
      Hashtbl.replace queues k
        (match Hashtbl.find_opt queues k with
        | Some es -> e :: es
        | None -> [ e ]))
    (History.to_list h);
  let pending = Hashtbl.fold (fun k es l -> (k, ref (List.rev es)) :: l) queues [] in
  let out = ref [] in
  let live () = List.filter (fun (_, q) -> !q <> []) pending in
  let rec drain () =
    match live () with
    | [] -> ()
    | alive ->
        let _, q = List.nth alive (Random.State.int st (List.length alive)) in
        (match !q with
        | e :: rest ->
            q := rest;
            out := e :: !out
        | [] -> assert false);
        drain ()
  in
  drain ();
  History.of_events_exn (List.rev !out)

let prop_equivalent_matches_reference seed =
  let params = { Gen.default with n_txns = 6; pending_ratio = 0.2 } in
  let h = Gen.run_seed params seed in
  let shuffled = reshuffle seed h in
  let other = Gen.run_seed params (seed + 1) in
  let shorter =
    if History.length h > 0 then History.prefix h (History.length h - 1)
    else h
  in
  List.for_all
    (fun h' ->
      History.equivalent h h' = reference_equivalent h h'
      && History.equivalent h' h = reference_equivalent h' h)
    [ h; shuffled; other; shorter ]
  && History.equivalent h shuffled

(* --- Gen's scheduler: seeded golden traces --------------------------------

   The candidate-selection loop moved from a cons-built list indexed with
   [List.nth] (O(threads) per pick, reverse thread order) to a preallocated
   array; the index maps through [k - 1 - i], so seeded histories must stay
   bit-for-bit identical.  Captured before the refactor. *)

let golden_gen_42 =
  "R1(X)->0 A1->A R2(X) W3(X,3)->ok R3(X) ret2:0 W4(Y,2)->ok W5(Y,1) \
   W4(X,2)->ok W4(Y,3)->ok ret5:ok R5(Y) R2(Y)->0 R4(X)->2 R2(Y) ret5:1 \
   R6(Z) ret2:0 R2(Z)->0 R8(Z) C2 ret8:0 R8(Z)->0 R7(Z) W8(Y,1) W9(X,2) \
   ret2:C ret8:ok W8(Y,3) R10(Y) ret8:ok C8 ret10:0 W10(Z,2)->ok R10(Z) \
   ret8:C"

let golden_gen_7 =
  "W3(Y,1) W1(Y,2)->ok ret3:ok W3(Z,2) C1->C R4(Y)->1 R4(X)->0 W2(Y,1) \
   R4(W) R5(X) ret2:ok C2 ret4:A W6(Z,1) ret2:C ret6:ok ret5:1 R6(Z) \
   W7(Z,2) R8(Z) W9(X,3) ret7:ok R7(W) W5(Y,1) ret7:1 ret9:ok ret5:ok C7 \
   W9(X,2) W10(W,2) ret9:ok C5 W9(Z,2) ret7:C ret10:ok ret9:ok W10(Z,1) \
   C9->C ret10:ok W10(Z,1)->ok R12(X)->0 W12(X,3)->ok R11(Y)->2 C10->C \
   W12(Z,1) R11(Z)->0 ret12:ok ret5:A C12->C W14(W,2) C11 R13(Z) ret11:C"

let test_golden_gen_42 () =
  let params =
    {
      Gen.default with
      n_txns = 10;
      n_vars = 3;
      n_threads = 3;
      max_ops = 4;
      pending_ratio = 0.2;
    }
  in
  Alcotest.(check string) "gen seed 42" golden_gen_42
    (Parse.to_text (Gen.run_seed params 42))

let test_golden_gen_7 () =
  let params =
    {
      Gen.default with
      n_txns = 14;
      n_vars = 4;
      n_threads = 4;
      max_ops = 3;
      mode = `Random_values;
    }
  in
  Alcotest.(check string) "gen seed 7" golden_gen_7
    (Parse.to_text (Gen.run_seed params 7))

(* --- snapshot-isolation verdicts under the conflict-matrix rewrite --------

   The DFS's write-write lower bound moved from per-candidate [List.mem]
   scans over write sets to a precomputed conflict matrix; one verdict
   character per seed, captured before the rewrite. *)

let golden_si_verdicts =
  "SSSSSSSSSSSSSSSSSUSSUSSUSSUSSSSSSSSUSSSSSUSSUSSSSSUSSUSSSSSU"

let test_golden_si () =
  let buf = Buffer.create 64 in
  for seed = 1 to 60 do
    let params =
      {
        Gen.default with
        n_txns = 6;
        n_vars = 2;
        n_threads = 3;
        mode = (if seed mod 3 = 0 then `Random_values else `Snapshot_values);
      }
    in
    let h = Gen.run_seed params seed in
    Buffer.add_char buf
      (match Snapshot_isolation.check ~max_nodes:200_000 h with
      | Verdict.Sat _ -> 'S'
      | Verdict.Unsat _ -> 'U'
      | Verdict.Unknown _ -> '?')
  done;
  Alcotest.(check string) "SI verdicts, seeds 1..60" golden_si_verdicts
    (Buffer.contents buf)

(* --- prefix-boundary helpers: semantics and scale -------------------------- *)

let serial_history ~txns =
  let events = ref [] in
  for i = txns downto 1 do
    events :=
      Event.Inv (i, Event.Write (0, i))
      :: Event.Res (i, Event.Write_ok)
      :: Event.Inv (i, Event.Try_commit)
      :: Event.Res (i, Event.Committed)
      :: !events
  done;
  History.of_events_exn !events

let test_boundary_semantics () =
  let h = serial_history ~txns:3 in
  let n = History.length h in
  let expected = [ 2; 4; 6; 8; 10; 12 ] in
  Alcotest.(check (list int)) "ends at a response" expected
    (Opacity.prefix_lengths h);
  Alcotest.(check (list int)) "oracle agrees" expected (Oracle.boundaries h);
  let h' =
    History.of_events_exn
      (History.to_list h @ [ Event.Inv (4, Event.Read 0) ])
  in
  Alcotest.(check (list int)) "trailing invocation appended once"
    (expected @ [ n + 1 ])
    (Opacity.prefix_lengths h');
  Alcotest.(check (list int)) "oracle agrees on the trailing invocation"
    (expected @ [ n + 1 ])
    (Oracle.boundaries h');
  Alcotest.(check (list int)) "empty" [] (Opacity.prefix_lengths History.empty);
  Alcotest.(check (list int)) "oracle empty" [] (Oracle.boundaries History.empty)

let test_boundary_scale () =
  (* ≥2000 responses, many calls: the helpers are a single O(n) pass with
     no per-call scan or tail append.  A reintroduced quadratic pattern
     (scan-to-last + copy per call, compounding over calls) blows the
     generous wall-clock bound; the linear version finishes in well under
     a second. *)
  let h = serial_history ~txns:1500 in
  let h' =
    History.of_events_exn
      (History.to_list h @ [ Event.Inv (2000, Event.Read 0) ])
  in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 500 do
    ignore (Opacity.prefix_lengths h);
    ignore (Oracle.boundaries h);
    ignore (Opacity.prefix_lengths h');
    ignore (Oracle.boundaries h')
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  if elapsed > 10.0 then
    Alcotest.failf "3000-response boundary helpers took %.1fs for 500 calls"
      elapsed

let suite =
  [
    ( "scheduler: seeded golden traces",
      [
        test "tl2 seed 42 reproduces bit-for-bit" test_golden_tl2;
        test "norec seed 7 reproduces bit-for-bit" test_golden_norec;
      ] );
    ( "gen: seeded golden traces",
      [
        test "seed 42 reproduces bit-for-bit" test_golden_gen_42;
        test "seed 7 reproduces bit-for-bit" test_golden_gen_7;
      ] );
    ( "snapshot isolation: seeded golden verdicts",
      [ test "seeds 1..60 unchanged" test_golden_si ] );
    ( "prefix boundaries",
      [
        test "response/invocation endings" test_boundary_semantics;
        slow "≥2000-response timing guard" test_boundary_scale;
      ] );
    ( "monitor: pending gauge",
      [
        qtest ~count:100 "gauge = recomputed count after every event"
          QCheck2.Gen.small_nat prop_pending_gauge;
      ] );
    ( "wire: EOF semantics",
      [
        test "EOF at a frame boundary is Closed" test_eof_at_boundary_is_closed;
        test "EOF inside a body is Desync" test_eof_mid_body_is_desync;
        test "EOF inside a header is Desync" test_eof_mid_header_is_desync;
      ] );
    ( "history: equivalent",
      [
        qtest ~count:200 "single-pass grouping matches the specification"
          QCheck2.Gen.small_nat prop_equivalent_matches_reference;
      ] );
  ]
