(* Regression tests for the plumbing fixed alongside the soak harness:
   the scheduler's runnable queue, the monitor's pending gauge, wire-level
   EOF semantics, and History.equivalent. *)

open Tm_safety
open Helpers

(* --- seeded scheduler golden traces -------------------------------------

   The runnable set moved from an O(n²) list to a random-access structure;
   seeded schedules must stay bit-for-bit identical or every recorded
   experiment in EXPERIMENTS.md silently changes.  These texts were captured
   before the refactor. *)

let golden_tl2_42 =
  "W2(W,83)->ok R2(Y) R3(W) R1(W) ret3:0 R3(Z) ret1:0 R1(Y) ret2:0 \
   R2(X)->0 C2 ret3:0 R3(W) ret1:0 R1(Z) ret3:A ret1:0 C1->C R5(Z) ret2:C \
   R4(W) W6(Y,56)->ok R6(X) ret5:0 W5(W,59)->ok R5(W)->59 C5 ret6:0 \
   R6(X)->0 C6 ret4:A ret5:C R8(W) R7(W)->59 R7(Z) ret8:59 R8(Z) ret7:0 \
   R7(W) ret6:C W9(X,31)->ok R9(X)->31 W9(W,72)->ok C9 ret7:59 C7->C \
   ret8:0 R8(X) R10(Z)->0 R10(Y) ret8:A ret10:56 R10(W) R11(W) ret10:A \
   ret11:A R13(W) R12(Z) ret9:C R14(Z) ret13:72 R13(Z)->0 R13(X) ret12:0 \
   R12(Y) ret14:0 R14(X) ret12:56 R12(W)->72 C12->C ret14:31 W14(X,21)->ok \
   C14 R15(Y) ret13:A R16(W) ret15:56 R15(W)->72 R15(Y) ret16:72 R16(Z) \
   ret14:C ret15:56 C15->C R17(Z) ret16:0 R16(X)->21 C16->C R18(X)->21 \
   R18(Z) ret17:0 R17(Y) ret18:0 R18(W) ret17:56 W17(X,57)->ok C17 \
   ret18:72 C18->C ret17:C"

let golden_norec_7 =
  "R1(X) W4(X,54)->ok W4(Y,48)->ok C4 R3(Z) ret1:0 R1(X) ret3:0 R3(Z) \
   R2(X)->0 R2(Z) ret1:0 C1->C ret4:C W6(Z,22)->ok W6(Y,81)->ok C6->C \
   R7(Y) W5(X,68)->ok W5(X,19)->ok C5 ret3:A ret5:C R9(Z)->22 W9(X,66)->ok \
   C9 R8(Z) ret2:A R10(X) ret8:22 R8(Z) ret9:C ret8:22 C8->C ret10:66 \
   R10(Z) R11(Z) ret7:81 W7(Z,86)->ok C7 ret10:22 C10->C ret11:22 R11(Z) \
   R12(Y)->81 R12(Z) ret7:C ret11:A R13(Z)->86 R13(Z)->86 C13->C R14(Z) \
   ret12:86 C12->C ret14:86 R14(X) W15(X,89)->ok W15(Z,99)->ok C15 \
   ret14:66 C14->C ret15:C"

let record ~stm ~threads ~txns ~ops ~vars ~seed =
  let params =
    {
      Stm.Workload.default with
      n_threads = threads;
      txns_per_thread = txns;
      ops_per_txn = ops;
      n_vars = vars;
      zipf_theta = 0.0;
    }
  in
  Parse.to_text (Sim.Runner.run ~stm ~params ~seed ()).Sim.Runner.history

let test_golden_tl2 () =
  Alcotest.(check string) "tl2 seed 42" golden_tl2_42
    (record ~stm:"tl2" ~threads:3 ~txns:4 ~ops:3 ~vars:4 ~seed:42)

let test_golden_norec () =
  Alcotest.(check string) "norec seed 7" golden_norec_7
    (record ~stm:"norec" ~threads:4 ~txns:3 ~ops:2 ~vars:3 ~seed:7)

(* --- the monitor's O(1) pending gauge ------------------------------------ *)

let recompute_pending h =
  List.length
    (List.filter (fun t -> not (Txn.is_t_complete t)) (History.infos h))

let prop_pending_gauge seed =
  (* After every event, the gauge equals the count recomputed from the
     transaction table — including histories that end with pending
     operations and live transactions. *)
  let params = { Gen.default with n_txns = 8; pending_ratio = 0.25 } in
  let h = Gen.run_seed params seed in
  let m = Monitor.create ~max_nodes:200_000 () in
  List.for_all
    (fun ev ->
      ignore (Monitor.push m ev);
      Monitor.pending_txns m = recompute_pending (Monitor.history m)
      && (Monitor.snapshot m).Monitor.pending = Monitor.pending_txns m)
    (History.to_list h)

(* --- wire EOF semantics --------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_all fd bytes =
  let n = Bytes.length bytes in
  let rec go pos = if pos < n then go (pos + Unix.write fd bytes pos (n - pos)) in
  go 0

let test_eof_at_boundary_is_closed () =
  with_socketpair (fun a b ->
      Unix.close a;
      match Service.Wire.recv b with
      | _ -> Alcotest.fail "expected Closed"
      | exception Service.Wire.Closed -> ())

let test_eof_mid_body_is_desync () =
  with_socketpair (fun a b ->
      (* A header promising 100 bytes, then 10 bytes, then EOF. *)
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 100l;
      write_all a header;
      write_all a (Bytes.make 10 'x');
      Unix.close a;
      match Service.Wire.recv b with
      | _ -> Alcotest.fail "expected Desync"
      | exception Service.Wire.Desync _ -> ()
      | exception Service.Wire.Closed ->
          Alcotest.fail "mid-frame EOF reported as a clean close")

let test_eof_mid_header_is_desync () =
  with_socketpair (fun a b ->
      write_all a (Bytes.make 2 '\000');
      Unix.close a;
      match Service.Wire.recv b with
      | _ -> Alcotest.fail "expected Desync"
      | exception Service.Wire.Desync _ -> ()
      | exception Service.Wire.Closed ->
          Alcotest.fail "mid-header EOF reported as a clean close")

(* --- History.equivalent --------------------------------------------------- *)

(* The specification, directly: same transactions, identical per-transaction
   event subsequences.  The implementation regrouped this into a single
   pass; they must coincide on arbitrary pairs. *)
let reference_equivalent h h' =
  let txs h = List.sort compare (History.txns h) in
  let per h k =
    List.filter (fun e -> Event.tx_of e = k) (History.to_list h)
  in
  List.equal Int.equal (txs h) (txs h')
  && List.for_all
       (fun k -> List.equal Event.equal (per h k) (per h' k))
       (txs h)

(* A per-transaction-order-preserving reshuffle: equivalent by construction. *)
let reshuffle seed h =
  let st = Random.State.make [| seed; 0x5eed |] in
  let queues = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let k = Event.tx_of e in
      Hashtbl.replace queues k
        (match Hashtbl.find_opt queues k with
        | Some es -> e :: es
        | None -> [ e ]))
    (History.to_list h);
  let pending = Hashtbl.fold (fun k es l -> (k, ref (List.rev es)) :: l) queues [] in
  let out = ref [] in
  let live () = List.filter (fun (_, q) -> !q <> []) pending in
  let rec drain () =
    match live () with
    | [] -> ()
    | alive ->
        let _, q = List.nth alive (Random.State.int st (List.length alive)) in
        (match !q with
        | e :: rest ->
            q := rest;
            out := e :: !out
        | [] -> assert false);
        drain ()
  in
  drain ();
  History.of_events_exn (List.rev !out)

let prop_equivalent_matches_reference seed =
  let params = { Gen.default with n_txns = 6; pending_ratio = 0.2 } in
  let h = Gen.run_seed params seed in
  let shuffled = reshuffle seed h in
  let other = Gen.run_seed params (seed + 1) in
  let shorter =
    if History.length h > 0 then History.prefix h (History.length h - 1)
    else h
  in
  List.for_all
    (fun h' ->
      History.equivalent h h' = reference_equivalent h h'
      && History.equivalent h' h = reference_equivalent h' h)
    [ h; shuffled; other; shorter ]
  && History.equivalent h shuffled

let suite =
  [
    ( "scheduler: seeded golden traces",
      [
        test "tl2 seed 42 reproduces bit-for-bit" test_golden_tl2;
        test "norec seed 7 reproduces bit-for-bit" test_golden_norec;
      ] );
    ( "monitor: pending gauge",
      [
        qtest ~count:100 "gauge = recomputed count after every event"
          QCheck2.Gen.small_nat prop_pending_gauge;
      ] );
    ( "wire: EOF semantics",
      [
        test "EOF at a frame boundary is Closed" test_eof_at_boundary_is_closed;
        test "EOF inside a body is Desync" test_eof_mid_body_is_desync;
        test "EOF inside a header is Desync" test_eof_mid_header_is_desync;
      ] );
    ( "history: equivalent",
      [
        qtest ~count:200 "single-pass grouping matches the specification"
          QCheck2.Gen.small_nat prop_equivalent_matches_reference;
      ] );
  ]
