open Tm_safety
open Helpers
open Dsl

let ok = function
  | Ok () -> ()
  | Error why -> Alcotest.failf "expected legal, got: %s" why

let illegal = function
  | Ok () -> Alcotest.fail "expected illegal"
  | Error _ -> ()

let test_legal_basics () =
  ok (Semantics.legal (history [ r 1 x 0; c 1 ]));
  ok (Semantics.legal (seq [ (fun k -> [ w k x 1; c k ]); (fun k -> [ r k x 1; c k ]) ]));
  illegal
    (Semantics.legal
       (seq [ (fun k -> [ w k x 1; c k ]); (fun k -> [ r k x 0; c k ]) ]));
  (* Aborted writer: its value must not be visible. *)
  ok
    (Semantics.legal
       (seq [ (fun k -> [ w k x 1; c_abort k ]); (fun k -> [ r k x 0; c k ]) ]));
  illegal
    (Semantics.legal
       (seq [ (fun k -> [ w k x 1; c_abort k ]); (fun k -> [ r k x 1; c k ]) ]))

let test_legal_own_writes () =
  (* Internal read sees own (uncommitted) write. *)
  ok (Semantics.legal (history [ w 1 x 7; r 1 x 7; a 1 ]));
  illegal (Semantics.legal (history [ w 1 x 7; r 1 x 3; a 1 ]));
  (* Latest own write wins. *)
  ok (Semantics.legal (history [ w 1 x 7; w 1 x 8; r 1 x 8; c 1 ]));
  (* An aborted-response write never took effect, even for later reads...
     (cannot be expressed: A_k ends the transaction) — but an aborted
     transaction's reads are still constrained: *)
  illegal
    (Semantics.legal
       (seq [ (fun k -> [ w k x 1; c k ]); (fun k -> [ r k x 9; a k ]) ]))

let test_legal_aborted_reads_skipped () =
  (* A read returning A_k is unconstrained. *)
  ok (Semantics.legal (history [ r_abort 1 x ]));
  ok
    (Semantics.legal
       (seq [ (fun k -> [ w k x 1; c k ]); (fun k -> [ r_abort k x ]) ]))

let test_legal_rejects_concurrent () =
  illegal (Semantics.legal Figures.fig1)

let test_final_state () =
  let h =
    seq
      [
        (fun k -> [ w k x 1; w k y 2; c k ]);
        (fun k -> [ w k x 3; c k ]);
        (fun k -> [ w k y 9; c_abort k ]);
      ]
  in
  let state = Array.make 3 0 in
  Semantics.final_state h state;
  Alcotest.(check (list int)) "state" [ 3; 2; 0 ] (Array.to_list state)

(* --- Completions (Definition 2) --- *)

let test_completion_canonical () =
  let h = history [ w 1 x 1; c_inv 1; r_inv 2 x ] in
  let commit = Completion.canonical ~decide:(fun _ -> true) h in
  Alcotest.(check bool) "t-complete" true (History.is_t_complete commit);
  Alcotest.(check (list int)) "T1 committed" [ 1 ] (History.committed commit);
  Alcotest.(check (list int)) "T2 aborted" [ 2 ] (History.aborted commit);
  let abort = Completion.canonical ~decide:(fun _ -> false) h in
  Alcotest.(check (list int)) "both aborted" [ 1; 2 ] (History.aborted abort);
  Alcotest.(check bool) "is completion (commit)" true
    (Completion.is_completion commit ~of_:h);
  Alcotest.(check bool) "is completion (abort)" true
    (Completion.is_completion abort ~of_:h)

let test_completion_complete_but_not_t_complete () =
  (* T1 finished its read but never invoked tryC: Definition 2 appends
     tryC·A. *)
  let h = history [ r 1 x 0 ] in
  let c = Completion.canonical ~decide:(fun _ -> true) h in
  Alcotest.(check int) "events" 4 (History.length c);
  Alcotest.(check (list int)) "aborted" [ 1 ] (History.aborted c);
  Alcotest.(check bool) "is completion" true (Completion.is_completion c ~of_:h)

let test_completion_enumerate () =
  let h = history [ w 1 x 1; c_inv 1; w 2 y 1; c_inv 2; r 3 x 0 ] in
  let all = Completion.enumerate h in
  Alcotest.(check int) "2 pending => 4 completions" 4 (List.length all);
  List.iter
    (fun c ->
      Alcotest.(check bool) "each is a completion" true
        (Completion.is_completion c ~of_:h))
    all;
  let commit_sets =
    List.map (fun c -> List.sort Int.compare (History.committed c)) all
    |> List.sort_uniq compare
  in
  Alcotest.(check (list (list int))) "decision vectors"
    [ []; [ 1 ]; [ 1; 2 ]; [ 2 ] ]
    commit_sets

let test_completion_enumerate_limit () =
  (* 3 pending tryCs => 8 completions; a limit of 4 truncates. *)
  let h =
    history [ w 1 x 1; c_inv 1; w 2 y 1; c_inv 2; w 3 z 1; c_inv 3 ]
  in
  Alcotest.(check int) "count" 8 (Completion.count h);
  let some = Completion.enumerate ~limit:4 h in
  Alcotest.(check int) "limit respected" 4 (List.length some);
  List.iter
    (fun c ->
      Alcotest.(check bool) "each is a completion" true
        (Completion.is_completion c ~of_:h))
    some;
  (* The cap bounds the work, not just the list: a pending set whose full
     enumeration (2^30 completions) could never fit in memory must return
     promptly. *)
  let adversarial =
    history
      (List.concat_map (fun k -> [ w k x k; c_inv k ]) (List.init 30 (fun i -> i + 1)))
  in
  Alcotest.(check int) "adversarial pending set, bounded work" 8
    (List.length (Completion.enumerate ~limit:8 adversarial))

let test_not_completion () =
  let h = history [ w 1 x 1; c_inv 1 ] in
  (* Extra transaction. *)
  let c1 = history [ w 1 x 1; c 1; r 2 x 1; c 2 ] in
  Alcotest.(check bool) "extra txn" false (Completion.is_completion c1 ~of_:h);
  (* Not t-complete. *)
  Alcotest.(check bool) "not t-complete" false (Completion.is_completion h ~of_:h);
  (* Changed operation. *)
  let c2 = history [ w 1 x 2; c 1 ] in
  Alcotest.(check bool) "changed op" false (Completion.is_completion c2 ~of_:h)

(* --- Serialization certificates --- *)

let test_to_history () =
  let h = history [ w_inv 1 x 1; w_ok 1; c_inv 1; r 2 x 1 ] in
  let s = Serialization.make ~order:[ 1; 2 ] ~committed:[ 1 ] in
  let sh = Serialization.to_history h s in
  Alcotest.(check bool) "t-sequential" true (History.is_t_sequential sh);
  Alcotest.(check bool) "t-complete" true (History.is_t_complete sh);
  Alcotest.(check (list int)) "order" [ 1; 2 ] (History.txns sh);
  Alcotest.(check (list int)) "committed" [ 1 ] (History.committed sh);
  Alcotest.(check bool) "equivalent to a completion" true
    (Completion.is_completion sh ~of_:h);
  ok (Semantics.legal sh)

let validate_err ?claim h s fragment =
  match Serialization.validate ?claim h s with
  | Ok () -> Alcotest.failf "expected validation failure (%s)" fragment
  | Error why ->
      let contains =
        let n = String.length fragment and m = String.length why in
        let rec go i =
          i + n <= m && (String.sub why i n = fragment || go (i + 1))
        in
        go 0
      in
      if not contains then
        Alcotest.failf "error %S does not mention %S" why fragment

let test_validate_clauses () =
  let h = history [ w 1 x 1; c 1; r 2 x 1; c 2 ] in
  (* Correct certificate. *)
  (match
     Serialization.validate h (Serialization.make ~order:[ 1; 2 ] ~committed:[ 1; 2 ])
   with
  | Ok () -> ()
  | Error why -> Alcotest.failf "valid certificate rejected: %s" why);
  (* Not a permutation. *)
  validate_err h (Serialization.make ~order:[ 1 ] ~committed:[ 1 ]) "permutation";
  validate_err h
    (Serialization.make ~order:[ 1; 2; 3 ] ~committed:[ 1 ])
    "permutation";
  (* Decision contradicts the history. *)
  validate_err h
    (Serialization.make ~order:[ 1; 2 ] ~committed:[ 1 ])
    "completion";
  (* Real time: T1 ≺RT T2 here. *)
  validate_err h
    (Serialization.make ~order:[ 2; 1 ] ~committed:[ 1; 2 ])
    "real-time";
  (* Legality. *)
  let h2 = history [ w 1 x 1; c 1; r 2 x 0; c 2 ] in
  validate_err h2
    (Serialization.make ~order:[ 1; 2 ] ~committed:[ 1; 2 ])
    "latest written value"

let test_validate_du_clause () =
  (* fig4's only final-state serialization fails the du clause. *)
  let s = Serialization.make ~order:[ 1; 3; 2 ] ~committed:[ 3 ] in
  (match Serialization.validate ~claim:Serialization.Final_state Figures.fig4 s with
  | Ok () -> ()
  | Error why -> Alcotest.failf "fig4 final-state certificate rejected: %s" why);
  validate_err ~claim:Serialization.Du_opaque Figures.fig4 s "local serialization"

let test_validate_no_rt () =
  let h = history [ w 1 x 1; c 1; r 2 x 0; w 2 y 1; c 2 ] in
  (* Serializable (T2 before T1) but not in real-time order. *)
  let s = Serialization.make ~order:[ 2; 1 ] ~committed:[ 1; 2 ] in
  validate_err h s "real-time";
  match Serialization.validate ~respect_rt:false ~claim:Serialization.Final_state h s with
  | Ok () -> ()
  | Error why -> Alcotest.failf "rt-free validation failed: %s" why

let suite =
  [
    ( "semantics",
      [
        test "legality basics" test_legal_basics;
        test "own writes" test_legal_own_writes;
        test "aborted reads unconstrained" test_legal_aborted_reads_skipped;
        test "rejects non-t-sequential" test_legal_rejects_concurrent;
        test "final state fold" test_final_state;
      ] );
    ( "completion",
      [
        test "canonical" test_completion_canonical;
        test "complete-but-not-t-complete" test_completion_complete_but_not_t_complete;
        test "enumerate" test_completion_enumerate;
        test "enumerate bounded by limit" test_completion_enumerate_limit;
        test "negatives" test_not_completion;
      ] );
    ( "serialization",
      [
        test "to_history" test_to_history;
        test "validator clauses" test_validate_clauses;
        test "du clause (fig4)" test_validate_du_clause;
        test "respect_rt:false" test_validate_no_rt;
      ] );
  ]
