(* Loopback tests for the [tm serve] service: verdict agreement with the
   offline checker, and the robustness invariants server.mli promises —
   malformed frames are answered and survived, a client dying mid-stream
   is reaped without wedging anybody else. *)

open Tm_safety
open Helpers
module Protocol = Service.Protocol
module Wire = Service.Wire
module Server = Service.Server
module Client = Service.Client

let status = Alcotest.testable Protocol.pp_status ( = )

(* Every read below times out rather than hanging the suite if the server
   ever stops answering. *)
let guard fd = Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.

let with_server ?(domains = 2) ?(shards = 1) f =
  let srv =
    Server.start (Server.config ~domains ~shards (`Tcp ("127.0.0.1", 0)))
  in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () -> f srv (Server.bound_addr srv))

let connect addr =
  let c = Client.connect addr in
  guard (Client.fd c);
  c

(* The server's verdict must be the online monitor's outcome — which the
   monitor tests in turn pin against the offline Du_opacity checker. *)
let offline_status h =
  let m = Monitor.create () in
  match Monitor.push_all m (History.to_list h) with
  | `Ok -> Protocol.S_ok
  | `Violation why -> Protocol.S_violation why
  | `Budget why -> Protocol.S_budget why

let norec_fault_history ~seed =
  let params =
    {
      Stm.Workload.default with
      n_threads = 3;
      txns_per_thread = 8;
      ops_per_txn = 3;
      n_vars = 4;
    }
  in
  let spec =
    Sim.Faults.sample ~n_threads:params.Stm.Workload.n_threads
      ~horizon:(Sim.Faults.horizon params) ~seed ()
  in
  (Sim.Faults.run_one ~check:false ~stm:"norec" ~params ~spec ~seed ())
    .Sim.Faults.history

(* --- verdicts match the offline checker ---------------------------------- *)

let test_figure_verdicts () =
  with_server (fun _srv addr ->
      let c = connect addr in
      List.iteri
        (fun i (e : Figures.expectation) ->
          let v = Client.submit ~session:(i + 1) c e.history in
          let expected = offline_status e.history in
          Alcotest.check status
            (Fmt.str "%s status" e.name)
            expected v.Protocol.status;
          (* a violating monitor goes sticky and stops accepting, so the
             full count is only promised for clean streams *)
          if expected = Protocol.S_ok then
            Alcotest.(check int)
              (Fmt.str "%s events" e.name)
              (History.length e.history) v.Protocol.events)
        Figures.catalog;
      Client.close c)

let test_fault_stream_verdicts () =
  with_server (fun _srv addr ->
      let c = connect addr in
      List.iteri
        (fun i seed ->
          let h = norec_fault_history ~seed in
          let v = Client.submit ~session:(i + 1) c h in
          Alcotest.check status
            (Fmt.str "norec-fault seed %d" seed)
            (offline_status h) v.Protocol.status)
        [ 7; 21; 42 ];
      Client.close c)

let test_checkpoint_progress () =
  with_server (fun _srv addr ->
      let h = Figures.fig1 in
      let events = History.to_list h in
      let n = List.length events in
      let half = n / 2 in
      let first = List.filteri (fun i _ -> i < half) events in
      let rest = List.filteri (fun i _ -> i >= half) events in
      let c = connect addr in
      Client.open_session c 1;
      Client.send_events c 1 first;
      let v = Client.checkpoint c 1 in
      Alcotest.(check int) "half acknowledged" half v.Protocol.events;
      Alcotest.check status "half status"
        (offline_status (History.prefix h half))
        v.Protocol.status;
      Client.send_events c 1 rest;
      let v = Client.close_session c 1 in
      Alcotest.(check int) "all acknowledged" n v.Protocol.events;
      Alcotest.check status "final status" (offline_status h)
        v.Protocol.status;
      Client.close c)

(* Many concurrent connections: every session still gets the offline
   checker's verdict, and the shard gauges settle back to zero. *)
let test_concurrent_sessions () =
  with_server ~domains:4 (fun srv addr ->
      let expected =
        List.map
          (fun (e : Figures.expectation) -> (e.history, offline_status e.history))
          Figures.catalog
      in
      let mismatches = Atomic.make 0 in
      let worker () =
        let c = connect addr in
        List.iteri
          (fun i (h, expect) ->
            let v = Client.submit ~session:(i + 1) c h in
            if v.Protocol.status <> expect then Atomic.incr mismatches)
          expected;
        Client.close c
      in
      let threads = List.init 8 (fun _ -> Thread.create worker ()) in
      List.iter Thread.join threads;
      Alcotest.(check int) "no mismatches" 0 (Atomic.get mismatches);
      (* closes are processed before their verdicts are sent, so by now
         every shard gauge reads zero *)
      let live =
        List.fold_left
          (fun a (d : Protocol.domain_stats) -> a + d.live_sessions)
          0 (Server.stats srv)
      in
      Alcotest.(check int) "no sessions left live" 0 live)

(* --- robustness ----------------------------------------------------------- *)

let await_live srv ~target =
  (* The reap travels through a mailbox; poll briefly for it to land. *)
  let live () =
    List.fold_left
      (fun a (d : Protocol.domain_stats) -> a + d.live_sessions)
      0 (Server.stats srv)
  in
  let rec go n =
    if live () > target && n > 0 then (Thread.delay 0.02; go (n - 1))
  in
  go 250;
  live ()

let test_client_killed_mid_stream () =
  with_server (fun srv addr ->
      (* A well-behaved client with a session in flight... *)
      let survivor = connect addr in
      let h = Figures.fig3 in
      let events = History.to_list h in
      let half = List.length events / 2 in
      Client.open_session survivor 1;
      Client.send_events survivor 1
        (List.filteri (fun i _ -> i < half) events);
      (* round-trip so the survivor's session is registered before the
         gauge is read below *)
      ignore (Client.checkpoint survivor 1);
      (* ...while another client dies abruptly, sessions open, no Goodbye. *)
      let doomed = connect addr in
      Client.open_session doomed 1;
      Client.open_session doomed 2;
      Client.send_events doomed 1 events;
      Unix.close (Client.fd doomed);
      (* only the survivor's session may remain live *)
      Alcotest.(check int) "dead client's sessions reaped" 1
        (await_live srv ~target:1);
      (* the survivor's session never noticed *)
      Client.send_events survivor 1
        (List.filteri (fun i _ -> i >= half) events);
      let v = Client.close_session survivor 1 in
      Alcotest.check status "survivor verdict" (offline_status h)
        v.Protocol.status;
      Client.close survivor;
      (* and the server still accepts fresh connections *)
      let c = connect addr in
      let v = Client.submit c Figures.fig1 in
      Alcotest.check status "fresh client served"
        (offline_status Figures.fig1) v.Protocol.status;
      Client.close c)

(* Raw wire-level conversation: a well-framed but undecodable body gets an
   Error answer and the connection keeps serving. *)
let send_raw fd body =
  let len = String.length body in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set hdr 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set hdr 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr (len land 0xff));
  assert (Unix.write fd hdr 0 4 = 4);
  assert (Unix.write_substring fd body 0 len = len)

let expect_frame fd what k =
  match Wire.recv fd with
  | Wire.Frame f -> k f
  | Wire.Malformed msg -> Alcotest.failf "%s: malformed reply (%s)" what msg

let test_malformed_frame_survived () =
  with_server (fun _srv addr ->
      let fd = Wire.connect addr in
      guard fd;
      Wire.send fd (Protocol.Hello { version = Protocol.version });
      expect_frame fd "handshake" (function
        | Protocol.Hello _ -> ()
        | f -> Alcotest.failf "expected Hello, got %a" Protocol.pp_frame f);
      (* tag 255 exists in no grammar *)
      send_raw fd "\xff\xffgarbage";
      expect_frame fd "garbage answered" (function
        | Protocol.Err { code = Protocol.Bad_frame; _ } -> ()
        | f -> Alcotest.failf "expected Bad_frame, got %a" Protocol.pp_frame f);
      (* the connection still works *)
      let h = Figures.fig5 in
      Wire.send fd (Protocol.Open_session { session = 1 });
      Wire.send fd
        (Protocol.Events { session = 1; events = History.to_list h });
      Wire.send fd (Protocol.Close_session { session = 1 });
      expect_frame fd "verdict after garbage" (function
        | Protocol.Verdict v ->
            Alcotest.check status "verdict" (offline_status h)
              v.Protocol.status
        | f -> Alcotest.failf "expected Verdict, got %a" Protocol.pp_frame f);
      Wire.send fd Protocol.Goodbye;
      Unix.close fd)

let test_handshake_required () =
  with_server (fun _srv addr ->
      let fd = Wire.connect addr in
      guard fd;
      Wire.send fd (Protocol.Open_session { session = 1 });
      expect_frame fd "refusal" (function
        | Protocol.Err { code = Protocol.Bad_magic; _ } -> ()
        | f -> Alcotest.failf "expected Bad_magic, got %a" Protocol.pp_frame f);
      (* the server hangs up after a failed handshake *)
      (match Wire.recv fd with
      | exception Wire.Closed -> ()
      | Wire.Frame f ->
          Alcotest.failf "expected EOF, got %a" Protocol.pp_frame f
      | Wire.Malformed msg -> Alcotest.failf "expected EOF, got (%s)" msg);
      Unix.close fd)

let test_session_errors () =
  with_server (fun _srv addr ->
      let c = connect addr in
      (match Client.checkpoint c 42 with
      | _ -> Alcotest.fail "checkpoint on unopened session must fail"
      | exception Client.Server_error _ -> ());
      Client.open_session c 1;
      Client.open_session c 1;
      (match Client.checkpoint c 1 with
      | _ -> Alcotest.fail "duplicate open must be reported"
      | exception Client.Server_error _ -> ());
      Client.close c)

let test_stats () =
  with_server ~domains:3 (fun _srv addr ->
      let c = connect addr in
      let ds = Client.stats c in
      Alcotest.(check int) "one entry per domain" 3 (List.length ds);
      ignore (Client.submit c Figures.fig1);
      let events =
        List.fold_left
          (fun a (d : Protocol.domain_stats) -> a + d.events)
          0 (Client.stats c)
      in
      Alcotest.(check int) "events accounted" (History.length Figures.fig1)
        events;
      Client.close c)

(* --- sharded sessions (v3) ------------------------------------------------- *)

(* A --shards 4 server must hand out the same verdicts as the sequential
   one: per-session streams flow through the two-phase certify/stitch
   monitor, and the paper figures exercise both its certifying and its
   escalating paths (fig2's duplicate written values poison a shard). *)
let test_sharded_verdicts () =
  with_server ~shards:4 (fun _srv addr ->
      let c = connect addr in
      List.iteri
        (fun i (e : Figures.expectation) ->
          let v = Client.submit ~session:(i + 1) c e.history in
          Alcotest.check status
            (Fmt.str "%s status (4 shards)" e.name)
            (offline_status e.history) v.Protocol.status)
        Figures.catalog;
      List.iteri
        (fun i seed ->
          let h = norec_fault_history ~seed in
          let v = Client.submit ~session:(100 + i) c h in
          Alcotest.check status
            (Fmt.str "norec-fault seed %d (4 shards)" seed)
            (offline_status h) v.Protocol.status)
        [ 7; 21; 42 ];
      Client.close c)

let test_shard_stats () =
  with_server ~shards:4 (fun _srv addr ->
      let c = connect addr in
      Alcotest.(check int) "negotiated v3" 3 (Client.version c);
      (* fig6 has unique written values: the shards certify it without
         escalating, so every certify lands on a validation path *)
      Client.open_session c 1;
      Client.send_events c 1 (History.to_list Figures.fig6);
      ignore (Client.checkpoint c 1);
      let st = Client.shard_stats c 1 in
      Alcotest.(check int) "shard count" 4 st.Protocol.shards;
      Alcotest.(check bool) "certified at least once" true
        (st.Protocol.certifies > 0);
      Alcotest.(check bool) "never escalated" true (st.Protocol.escalated = None);
      Alcotest.(check int) "every certify accounted"
        st.Protocol.certifies
        (st.Protocol.incremental + st.Protocol.full);
      ignore (Client.close_session c 1);
      (* fig1 writes the same value twice: the owning shard poisons and the
         session is handed to the sequential monitor, with the reason
         travelling in the counters frame *)
      Client.open_session c 2;
      Client.send_events c 2 (History.to_list Figures.fig1);
      ignore (Client.checkpoint c 2);
      let st = Client.shard_stats c 2 in
      Alcotest.(check bool) "escalation reason reported" true
        (st.Protocol.escalated <> None);
      ignore (Client.close_session c 2);
      (* counters for an unknown session are an error, not a hang *)
      (match Client.shard_stats c 99 with
      | _ -> Alcotest.fail "shard_stats on unopened session must fail"
      | exception Client.Server_error _ -> ());
      Client.close c)

let test_shard_stats_gated () =
  with_server ~shards:2 (fun _srv addr ->
      let c = Client.connect ~version:2 addr in
      guard (Client.fd c);
      Alcotest.(check int) "negotiated v2" 2 (Client.version c);
      Client.open_session c 1;
      (match Client.shard_stats c 1 with
      | _ -> Alcotest.fail "Shards_req must be refused on a v2 connection"
      | exception Client.Server_error _ -> ());
      (* the refusal did not poison the connection *)
      Client.send_events c 1 (History.to_list Figures.fig1);
      let v = Client.close_session c 1 in
      Alcotest.check status "verdict after refusal"
        (offline_status Figures.fig1) v.Protocol.status;
      Client.close c)

(* Concurrency: many connections against a sharded server share one
   certify pool; verdicts must stay exact and gauges settle. *)
let test_sharded_concurrent () =
  with_server ~domains:4 ~shards:4 (fun srv addr ->
      let expected =
        List.map
          (fun (e : Figures.expectation) -> (e.history, offline_status e.history))
          Figures.catalog
      in
      let mismatches = Atomic.make 0 in
      let worker () =
        let c = connect addr in
        List.iteri
          (fun i (h, expect) ->
            let v = Client.submit ~session:(i + 1) c h in
            if v.Protocol.status <> expect then Atomic.incr mismatches)
          expected;
        Client.close c
      in
      let threads = List.init 6 (fun _ -> Thread.create worker ()) in
      List.iter Thread.join threads;
      Alcotest.(check int) "no mismatches" 0 (Atomic.get mismatches);
      let live =
        List.fold_left
          (fun a (d : Protocol.domain_stats) -> a + d.live_sessions)
          0 (Server.stats srv)
      in
      Alcotest.(check int) "no sessions left live" 0 live)

let suite =
  [
    ( "service: verdicts",
      [
        test "six paper figures match the offline checker"
          test_figure_verdicts;
        test "fault-injected norec recordings match" test_fault_stream_verdicts;
        test "checkpoints see prefix verdicts" test_checkpoint_progress;
        slow "8 connections x 7 sessions, all verdicts agree"
          test_concurrent_sessions;
      ] );
    ( "service: robustness",
      [
        test "client killed mid-stream is reaped, others unaffected"
          test_client_killed_mid_stream;
        test "malformed frame answered, connection survives"
          test_malformed_frame_survived;
        test "handshake is mandatory" test_handshake_required;
        test "unknown and duplicate sessions reported" test_session_errors;
        test "stats count every shard" test_stats;
      ] );
    ( "service: sharded sessions",
      [
        test "--shards 4 verdicts match the offline checker"
          test_sharded_verdicts;
        test "Shards_req reports certify/stitch counters" test_shard_stats;
        test "Shards_req is v3-gated, refusal is survivable"
          test_shard_stats_gated;
        slow "6 connections x 7 sessions on a shared certify pool"
          test_sharded_concurrent;
      ] );
  ]
