(* The location-sharded monitor against the sequential monitor: verdict and
   first-violating-prefix parity across shard counts over every soak
   source, the Finding-3 prefix trap (certifying the current history must
   not resurrect a dead prefix), checkpoint capsules, a genuinely parallel
   executor, and escalation transparency on ill-formed streams. *)

open Tm_safety
open Helpers

let max_nodes = 500_000

let soak_sources : Oracle.source list =
  [
    `Gen; `Stm "tl2"; `Stm "norec"; `Stm "pessimistic"; `Faults "tl2";
    `Faults "norec";
  ]

let gen_soak_history =
  QCheck2.Gen.map
    (fun (i, seed) ->
      Oracle.produce (List.nth soak_sources (i mod List.length soak_sources))
        ~seed)
    QCheck2.Gen.(pair (int_range 0 5) (int_range 0 100_000))

(* Feed [events] through a sharded monitor, certifying every [period]
   events (exercising the frontier-incremental stitch) and once at the
   end (settling the verdict). *)
let drive ?run ~nshards ~period events =
  let s = Sharded_monitor.create ~max_nodes ~nshards ?run () in
  List.iteri
    (fun i ev ->
      ignore (Sharded_monitor.push s ev);
      if (i + 1) mod period = 0 then ignore (Sharded_monitor.certify s))
    events;
  let st = Sharded_monitor.certify s in
  (s, st)

(* Exact-parity oracle: after escalation the sharded monitor {e is} a
   monitor replaying the same accepted events, so any outcome difference
   is a bug — except "monitor ran out of budget, sharded certified
   without ever searching", which is the sharded path working as
   designed. *)
let agrees name (mstat, midx) (sstat, sidx) =
  match mstat, sstat with
  | `Ok, `Ok | `Budget _, (`Budget _ | `Ok) -> true
  | `Violation _, `Violation _ ->
      midx = sidx
      || QCheck2.Test.fail_reportf
           "%s: first violating prefix differs: monitor=%a sharded=%a" name
           Fmt.(option ~none:(any "-") int)
           midx
           Fmt.(option ~none:(any "-") int)
           sidx
  | _ ->
      let show = function
        | `Ok -> "ok"
        | `Violation w -> "violation (" ^ w ^ ")"
        | `Budget w -> "budget (" ^ w ^ ")"
      in
      QCheck2.Test.fail_reportf "%s: monitor=%s sharded=%s" name (show mstat)
        (show sstat)

let monitor_outcome events =
  let m = Monitor.create ~max_nodes () in
  ignore (Monitor.push_all m events);
  (Monitor.status m, Monitor.violation_index m)

(* --- the shard-count sweep ----------------------------------------------- *)

let prop_shard_sweep =
  qtest ~count:250 "Sharded_monitor ≡ Monitor for 1/2/4/8 shards"
    QCheck2.Gen.(pair gen_soak_history (int_range 1 8))
    (fun (h, stride) ->
      let events = History.to_list h in
      let reference = monitor_outcome events in
      List.for_all
        (fun nshards ->
          let s, st = drive ~nshards ~period:(stride * 5) events in
          agrees
            (Fmt.str "%d shards, certify period %d" nshards (stride * 5))
            reference
            (st, Sharded_monitor.violation_index s))
        [ 1; 2; 4; 8 ])

(* The incremental stitch must actually engage on clean streams — if every
   certify fell back to the full validation, the fast path is dead code
   and the service would revalidate quadratically. *)
let prop_incremental_engages =
  qtest ~count:100 "frequent certifies hit the incremental stitch"
    gen_soak_history
    (fun h ->
      let s, _ = drive ~nshards:4 ~period:3 (History.to_list h) in
      let st = Sharded_monitor.stitch_stats s in
      st.Sharded_monitor.escalated <> None
      || st.Sharded_monitor.certifies < 4
      || st.Sharded_monitor.incremental > 0)

(* --- Finding 3: a certified present must not absolve a dead prefix ------- *)

let test_corollary2_gap () =
  let h, vidx = Tm_figures.Findings.corollary2_gap in
  let events = History.to_list h in
  let mstat, midx = monitor_outcome events in
  Alcotest.(check (option int)) "monitor blames the gap prefix" (Some vidx)
    midx;
  List.iter
    (fun nshards ->
      let s, st = drive ~nshards ~period:4 events in
      (match mstat, st with
      | `Violation _, `Violation _ -> ()
      | _ -> Alcotest.failf "%d shards: expected a sticky violation" nshards);
      Alcotest.(check (option int))
        (Fmt.str "%d shards: first violating prefix" nshards)
        (Some vidx)
        (Sharded_monitor.violation_index s))
    [ 1; 2; 4; 8 ]

(* --- checkpoint capsules -------------------------------------------------- *)

let test_persist_roundtrip () =
  (* A clean stream: the capsule records a certified `Ok and rebuilds. *)
  let h = Oracle.produce (`Stm "tl2") ~seed:42 in
  let s, st = drive ~nshards:4 ~period:50 (History.to_list h) in
  (match st with `Ok -> () | _ -> Alcotest.fail "expected a certified `Ok");
  let p = Sharded_monitor.persist s in
  (match Sharded_monitor.of_persisted ~nshards:4 p with
  | Ok s' ->
      Alcotest.(check bool) "rebuilt stream is `Ok" true
        (Sharded_monitor.status s' = `Ok);
      Alcotest.(check int) "history survives" (History.length h)
        (History.length (Sharded_monitor.history s'))
  | Error why -> Alcotest.failf "clean capsule rejected: %s" why);
  (* A violating stream: the recorded failure is adopted, index intact. *)
  let hbad, vidx = Tm_figures.Findings.corollary2_gap in
  let sbad, _ = drive ~nshards:2 ~period:4 (History.to_list hbad) in
  let pbad = Sharded_monitor.persist sbad in
  match Sharded_monitor.of_persisted ~nshards:2 pbad with
  | Ok s' ->
      (match Sharded_monitor.status s' with
      | `Violation _ -> ()
      | _ -> Alcotest.fail "recorded violation not adopted");
      Alcotest.(check (option int)) "violation index adopted" (Some vidx)
        (Sharded_monitor.violation_index s')
  | Error why -> Alcotest.failf "failure capsule rejected: %s" why

(* --- a genuinely parallel executor --------------------------------------- *)

let test_parallel_executor () =
  let run jobs =
    Array.map (fun job -> Domain.spawn job) jobs
    |> Array.iter (fun d -> Domain.join d)
  in
  List.iter
    (fun seed ->
      let h = Oracle.produce `Gen ~seed in
      let events = History.to_list h in
      let _, st_seq = drive ~nshards:4 ~period:20 events in
      let _, st_par = drive ~run ~nshards:4 ~period:20 events in
      let tag = function
        | `Ok -> "ok"
        | `Violation _ -> "violation"
        | `Budget _ -> "budget"
      in
      Alcotest.(check string)
        (Fmt.str "seed %d: parallel ≡ sequential executor" seed)
        (tag st_seq) (tag st_par))
    [ 1; 2; 3; 4; 5 ]

(* --- escalation transparency on ill-formed streams ------------------------ *)

let test_ill_formed_parity () =
  (* A response with no pending invocation is rejected by History.extend;
     the monitor turns that into a sticky violation and so, via
     escalation, must the sharded monitor — at the same index. *)
  let events =
    [
      Event.Inv (1, Event.Write (0, 1));
      Event.Res (1, Event.Write_ok);
      Event.Res (2, Event.Committed);
      Event.Inv (1, Event.Try_commit);
    ]
  in
  let mstat, midx = monitor_outcome events in
  let s = Sharded_monitor.create ~max_nodes ~nshards:3 () in
  ignore (Sharded_monitor.push_all s events);
  ignore (Sharded_monitor.certify s);
  (match mstat, Sharded_monitor.status s with
  | `Violation _, `Violation _ -> ()
  | _ -> Alcotest.fail "expected sticky violations on both paths");
  Alcotest.(check (option int)) "same violation index" midx
    (Sharded_monitor.violation_index s);
  Alcotest.(check bool) "sharded path escalated" true
    (Sharded_monitor.escalated s)

let suite =
  [
    ( "sharded monitor",
      [
        prop_shard_sweep;
        prop_incremental_engages;
        test "Finding 3: the gap prefix stays blamed across shard counts"
          test_corollary2_gap;
        test "persist/of_persisted round-trips both outcomes"
          test_persist_roundtrip;
        test "domain-pool executor agrees with the sequential one"
          test_parallel_executor;
        test "ill-formed events escalate to monitor parity"
          test_ill_formed_parity;
      ] );
  ]
