(* Replay the soak discrepancy corpus through the lockstep oracle.

   Every [corpus/soak/*.repro] is a shrunk history that once made two
   checker paths disagree (or, for closure-gap entries, exposed legitimate
   non-prefix-closure first misread as a disagreement).  Replaying them on
   every [dune runtest] keeps those bugs fixed: a repro whose findings come
   back is a regression, named by its file.

   The file format is self-describing: [#] lines are comments (provenance,
   seed line, classification) and the body parses as a history.  A comment
   line [# expect: closure-gap] additionally asserts the oracle flags the
   benign gap. *)

open Tm_safety
open Helpers

(* [dune runtest] runs the binary from [_build/default/test] (the corpus is
   a declared dependency, materialised next to it); [dune exec] runs from
   the project root. *)
let corpus_dir =
  List.find_opt Sys.file_exists [ "../corpus/soak"; "corpus/soak" ]
  |> Option.value ~default:"../corpus/soak"

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let expects_gap text =
  String.split_on_char '\n' text
  |> List.exists (fun l -> String.trim l = "# expect: closure-gap")

let replay file () =
  let text = read_file (Filename.concat corpus_dir file) in
  let h = Parse.of_string_exn text in
  let r = Oracle.lockstep h in
  (match r.Oracle.findings with
  | [] -> ()
  | fs ->
      Alcotest.failf "%s regressed: %s" file
        (String.concat "; " (List.map (Fmt.str "%a" Oracle.pp_finding) fs)));
  if expects_gap text then
    Alcotest.(check bool)
      (file ^ ": closure gap still flagged")
      true r.Oracle.closure_gap

let entries =
  match Sys.readdir corpus_dir with
  | files ->
      Array.to_list files
      |> List.filter (fun f -> Filename.check_suffix f ".repro")
      |> List.sort compare
  | exception Sys_error _ -> []

let suite =
  [
    ( "soak corpus",
      match entries with
      | [] -> [ test "corpus present" (fun () -> Alcotest.fail "corpus/soak missing or empty") ]
      | fs -> List.map (fun f -> test f (replay f)) fs );
  ]
