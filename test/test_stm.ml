open Tm_safety
open Helpers

(* The paper's Section 5, as experiments: deferred-update and strict STMs
   export only du-opaque histories; the pessimistic/dirty/eager controls
   are caught by the checkers. *)

let params =
  {
    Stm.Workload.default with
    n_threads = 3;
    txns_per_thread = 5;
    ops_per_txn = 3;
    n_vars = 4;
    read_ratio = 0.5;
  }

let check_du h = Du_opacity.check_fast ~max_nodes:1_000_000 h

let seeds = List.init 20 (fun i -> i + 1)

let test_safe_stm stm () =
  List.iter
    (fun seed ->
      let r = Sim.Runner.run ~stm ~params ~seed () in
      let h = r.Sim.Runner.history in
      (match check_du h with
      | Verdict.Sat _ -> ()
      | Verdict.Unsat why ->
          Alcotest.failf "%s seed %d: NOT du-opaque: %s@.%s" stm seed why
            (Pretty.timeline h)
      | Verdict.Unknown why -> Alcotest.failf "%s seed %d: %s" stm seed why);
      (* And therefore opaque (Theorem 10); verify directly on a sample. *)
      if seed <= 3 then
        check_sat (Fmt.str "%s seed %d opaque" stm seed)
          (Opacity.check ~max_nodes:1_000_000 h))
    seeds

let test_control_stm stm () =
  let violations = ref 0 in
  List.iter
    (fun seed ->
      let r = Sim.Runner.run ~stm ~params ~seed () in
      match check_du r.Sim.Runner.history with
      | Verdict.Sat _ -> ()
      | Verdict.Unsat _ -> incr violations
      | Verdict.Unknown why -> Alcotest.failf "%s seed %d: %s" stm seed why)
    seeds;
  if !violations = 0 then
    Alcotest.failf "%s: no violation found over %d seeds — control is useless"
      stm (List.length seeds)

let test_stats_sane () =
  let r = Sim.Runner.run ~stm:"tl2" ~params ~seed:7 () in
  let s = r.Sim.Runner.stats in
  Alcotest.(check bool) "some commits" true (s.Stm.Harness.commits > 0);
  Alcotest.(check bool) "commits bounded by programs" true
    (s.Stm.Harness.commits <= params.Stm.Workload.n_threads * params.Stm.Workload.txns_per_thread);
  (* Every committed program appears in the history as a committed txn. *)
  let committed_in_history = List.length (History.committed r.Sim.Runner.history) in
  Alcotest.(check int) "history agrees with stats" s.Stm.Harness.commits
    committed_in_history

let test_determinism () =
  let r1 = Sim.Runner.run ~stm:"norec" ~params ~seed:11 () in
  let r2 = Sim.Runner.run ~stm:"norec" ~params ~seed:11 () in
  Alcotest.(check (list event)) "same history"
    (History.to_list r1.Sim.Runner.history)
    (History.to_list r2.Sim.Runner.history);
  let r3 = Sim.Runner.run ~stm:"norec" ~params ~seed:12 () in
  Alcotest.(check bool) "different seed differs" true
    (History.to_list r1.Sim.Runner.history
    <> History.to_list r3.Sim.Runner.history)

(* Exhaustive schedule exploration on a small configuration: EVERY
   interleaving yields a du-opaque history. *)
let test_explore_exhaustive stm () =
  let tiny =
    {
      Stm.Workload.default with
      n_threads = 2;
      txns_per_thread = 1;
      ops_per_txn = 2;
      n_vars = 2;
      read_ratio = 0.5;
    }
  in
  let histories = ref 0 in
  let outcome =
    Sim.Explore.explore_stm ~max_runs:3000 ~stm ~params:tiny ~seed:3
      ~on_history:(fun h ->
        incr histories;
        match check_du h with
        | Verdict.Sat _ -> ()
        | Verdict.Unsat why ->
            Alcotest.failf "%s schedule %d: %s@.%s" stm !histories why
              (Pretty.timeline h)
        | Verdict.Unknown why -> Alcotest.failf "%s: %s" stm why)
      ()
  in
  Alcotest.(check bool)
    (Fmt.str "explored some schedules (%d)" outcome.Sim.Explore.runs)
    true
    (outcome.Sim.Explore.runs > 10)

let test_explore_finds_control_violation () =
  (* The eager control must be caught by *some* schedule of a tiny
     read/write crossing. *)
  let tiny =
    {
      Stm.Workload.default with
      n_threads = 2;
      txns_per_thread = 1;
      ops_per_txn = 2;
      n_vars = 1;
      read_ratio = 0.5;
    }
  in
  let found = ref false in
  let _ =
    Sim.Explore.explore_stm ~max_runs:3000 ~stm:"eager" ~params:tiny ~seed:1
      ~on_history:(fun h ->
        match check_du h with
        | Verdict.Unsat _ -> found := true
        | Verdict.Sat _ | Verdict.Unknown _ -> ())
      ()
  in
  Alcotest.(check bool) "eager caught by exploration" true !found

(* Parallel (real domains, Atomic memory): recorded histories are
   well-formed by construction and du-opaque for safe STMs. *)
let test_parallel_recorded stm () =
  let params =
    { params with Stm.Workload.n_threads = 4; txns_per_thread = 10 }
  in
  let r =
    Stm.Parallel.run ~record:true
      ~algorithm:(Stm.Registry.find_exn stm)
      ~params ~seed:5 ()
  in
  match r.Stm.Parallel.history with
  | None -> Alcotest.fail "recording was on"
  | Some h -> (
      Alcotest.(check bool) "nonempty" true (History.length h > 0);
      match check_du h with
      | Verdict.Sat _ -> ()
      | Verdict.Unsat why ->
          Alcotest.failf "%s (domains): NOT du-opaque: %s" stm why
      | Verdict.Unknown why -> Alcotest.failf "%s (domains): %s" stm why)

let test_registry () =
  Alcotest.(check int) "11 algorithms" 11 (List.length Stm.Registry.algorithms);
  List.iter
    (fun name ->
      match Stm.Registry.find name with
      | Some _ -> ()
      | None -> Alcotest.failf "missing %s" name)
    (Stm.Registry.safe @ Stm.Registry.lastuse_safe @ Stm.Registry.controls);
  Alcotest.(check bool) "unknown" true (Stm.Registry.find "nope" = None)

let test_unique_workload_polygraph () =
  (* Unique-writes workloads let the polygraph fast path decide STM
     histories; it must agree with the general checker. *)
  let params = { params with Stm.Workload.values = `Unique } in
  List.iter
    (fun seed ->
      (* A retried program replays its write values under a fresh
         transaction id, which would break the per-transaction uniqueness
         premise — so give every program a single attempt. *)
      let r = Sim.Runner.run ~max_retries:1 ~stm:"tl2" ~params ~seed () in
      let h = r.Sim.Runner.history in
      match Polygraph.check h with
      | Polygraph.Sat _ -> ()
      | Polygraph.Unsat why -> Alcotest.failf "seed %d: %s" seed why
      | Polygraph.Not_unique why ->
          Alcotest.failf "seed %d: unexpected duplicate: %s" seed why)
    (List.init 10 (fun i -> i + 100))

(* The recorded log survives being cut by an omission plan: Parallel.run
   keeps the longest well-formed prefix and accounts for the torn tail. *)
let test_parallel_torn_accounting () =
  let params =
    { params with Stm.Workload.n_threads = 3; txns_per_thread = 5 }
  in
  let run faults =
    Stm.Parallel.run ~record:true ~faults
      ~algorithm:(Stm.Registry.find_exn "tl2")
      ~params ~seed:7 ()
  in
  let clean = run Stm.Faults.none in
  Alcotest.(check int) "fault-free runs are never torn" 0
    clean.Stm.Parallel.torn_tail;
  (* The log is far longer than any cut below, so the cut is exact: the
     salvaged history plus the torn tail is the whole truncated log. *)
  List.iter
    (fun cut ->
      let r =
        run { Stm.Faults.none with Stm.Faults.omission = Some cut }
      in
      match r.Stm.Parallel.history with
      | None -> Alcotest.fail "recording was on"
      | Some h ->
          Alcotest.(check int)
            (Fmt.str "cut %d fully accounted" cut)
            cut
            (History.length h + r.Stm.Parallel.torn_tail))
    [ 1; 3; 7; 17; 23 ]

let suite =
  [
    ( "stm: safe algorithms (sim)",
      List.map
        (fun stm -> slow (stm ^ " du-opaque on 20 seeds") (test_safe_stm stm))
        Stm.Registry.safe );
    ( "stm: negative controls (sim)",
      List.map
        (fun stm -> slow (stm ^ " caught") (test_control_stm stm))
        Stm.Registry.controls );
    ( "stm: infrastructure",
      [
        test "stats vs history" test_stats_sane;
        test "determinism" test_determinism;
        test "registry" test_registry;
        slow "explore: tl2 exhaustively du-opaque" (test_explore_exhaustive "tl2");
        slow "explore: norec exhaustively du-opaque"
          (test_explore_exhaustive "norec");
        slow "explore: eager violation found" test_explore_finds_control_violation;
        slow "parallel tl2 (domains) du-opaque" (test_parallel_recorded "tl2");
        slow "parallel norec (domains) du-opaque" (test_parallel_recorded "norec");
        slow "parallel torn-tail accounting" test_parallel_torn_accounting;
        slow "unique workload via polygraph" test_unique_workload_polygraph;
      ] );
  ]
